"""RunSpec: one experiment as data, round-trippable to JSON.

A :class:`RunSpec` composes everything a run needs -- model
configuration, data source, optimizer, sparse update strategy, numeric
precision, parallelism, and the training schedule -- as plain
dataclasses of plain values.  ``RunSpec.from_dict(spec.to_dict())``
is the identity, and ``to_json``/``from_json`` make every scenario a
config file::

    {
      "model":     {"config": "mlperf", "rows_cap": 2000, "seed": 5},
      "data":      {"name": "criteo", "seed": 0},
      "optimizer": {"name": "split_sgd", "lr": 0.15},
      "update":    {"name": "racefree", "threads": 28},
      "precision": {"storage": "split_bf16", "lo_bits": 16},
      "parallel":  {"ranks": 1},
      "schedule":  {"steps": 200, "eval_every": 50}
    }

Component names resolve through the registries of
:mod:`repro.train.registry`; the ``build_*`` methods turn the spec into
live objects.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.core.config import CONFIGS, DLRMConfig, get_config
from repro.core.model import DLRM
from repro.core.optim import SGD, SplitSGD
from repro.core.update import UpdateStrategy
from repro.train.registry import (
    DATASETS,
    LR_SCHEDULES,
    OPTIMIZERS,
    UPDATE_STRATEGIES,
)

#: Fields of DLRMConfig that JSON round-trips as lists but must be tuples.
_TUPLE_FIELDS = ("table_rows", "bottom_mlp", "top_mlp")


def _from_mapping(cls: type, data: dict[str, Any], where: str) -> Any:
    """Build dataclass ``cls`` from ``data``, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise TypeError(f"{where}: expected a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"{where}: unknown keys {unknown}; known: {sorted(known)}")
    return cls(**data)


@dataclass(frozen=True)
class ModelSpec:
    """Which DLRM to build, and at what scale.

    ``config`` names a paper preset (Table I); ``overrides`` are applied
    with ``dataclasses.replace`` for custom topologies; ``rows_cap`` and
    ``minibatch`` are the common scaled-down-for-laptops knobs (the
    latter mirrors ``DLRMConfig.scaled_down``: global = 4x, local = x).
    """

    config: str = "small"
    rows_cap: int | None = None
    minibatch: int | None = None
    overrides: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    engine: str = "reference"

    def __post_init__(self) -> None:
        # Normalise sequence-valued overrides to tuples so a spec equals
        # its JSON round trip (JSON turns tuples into lists).
        fixed = {
            k: tuple(v) if k in _TUPLE_FIELDS else v
            for k, v in self.overrides.items()
        }
        object.__setattr__(self, "overrides", fixed)

    def build_config(self) -> DLRMConfig:
        cfg = get_config(self.config)
        if self.overrides:
            cfg = dataclasses.replace(cfg, **self.overrides)
        if self.rows_cap is not None:
            cfg = dataclasses.replace(
                cfg, table_rows=tuple(min(m, self.rows_cap) for m in cfg.table_rows)
            )
        if self.minibatch is not None:
            cfg = dataclasses.replace(
                cfg,
                minibatch=self.minibatch,
                global_minibatch=self.minibatch * 4,
                local_minibatch=self.minibatch,
            )
        return cfg


@dataclass(frozen=True)
class DataSpec:
    """Data source: a name in :data:`~repro.train.registry.DATASETS`.

    ``prefetch_depth`` is how many future batches the
    :class:`~repro.exec.prefetch.PrefetchLoader` schedules ahead of the
    training step (per worker process under the process backend).
    Batches are pure functions of ``(seed, batch_index)``, so any depth
    is bit-identical to synchronous synthesis -- only wall-clock moves.
    """

    name: str = "random"
    seed: int = 0
    prefetch_depth: int = 1
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class OptimizerSpec:
    """Optimizer: a name in :data:`~repro.train.registry.OPTIMIZERS`."""

    name: str = "sgd"
    lr: float = 0.05
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class UpdateSpec:
    """Sparse update strategy (paper Sect. III-A) by registry name."""

    name: str = "racefree"
    threads: int = 28


@dataclass(frozen=True)
class PrecisionSpec:
    """Weight storage: FP32 or the paper's Split-BF16 (Sect. VII)."""

    storage: str = "fp32"
    lo_bits: int = 16


@dataclass(frozen=True)
class ParallelSpec:
    """Single-process (ranks=1) or hybrid-parallel on a SimCluster.

    ``backend`` is the modelled *communication* backend (mpi/ccl/local);
    ``exec_backend`` is the real execution substrate the trainer runs
    rank phases on (``thread`` = the process-wide worker pool,
    ``process`` = shared-memory worker processes, see
    :mod:`repro.exec.mp`), with ``exec_workers`` worker threads or
    processes (None = backend default).  ``bucket_mb`` caps the
    issue-as-ready gradient buckets of the MLP allreduce (MiB per
    bucket; smaller = more overlap, more per-collective overhead).
    Every combination trains bitwise identically; only wall-clock and
    virtual comm-overlap change.
    """

    ranks: int = 1
    platform: str = "node"
    backend: str = "ccl"
    exchange: str = "alltoall"
    placement: str = "round_robin"
    exec_backend: str = "thread"
    exec_workers: int | None = None
    bucket_mb: float = 4.0


@dataclass(frozen=True)
class TieringSpec:
    """Frequency-aware embedding tiering (:mod:`repro.tiering`).

    ``enabled`` turns on hot/cold storage for tables the planner deems
    worth splitting; ``placement="auto"`` in :class:`ParallelSpec`
    additionally lets the planner choose table-to-rank owners (either
    switch triggers the planning pass).  ``hot_rows`` is the per-table
    pinned-hot row budget (the shared-memory arena size);
    ``coverage_threshold`` is the minimum fraction of profiled look-ups
    the hot set must absorb before a table is split; tables smaller than
    ``min_table_rows`` always stay flat.  ``profile_batches``
    deterministic dataset batches feed the frequency counters -- every
    process that holds the spec recomputes the identical plan, which is
    how resume and serving stay bit-exact without persisting it.
    ``cold_dir`` hosts the mmap-backed cold files (default: a temp dir).
    Tiering applies to FP32 storage only.
    """

    enabled: bool = False
    hot_rows: int = 8192
    coverage_threshold: float = 0.5
    min_table_rows: int = 2048
    profile_batches: int = 4
    cold_dir: str | None = None


@dataclass(frozen=True)
class ResilienceSpec:
    """Fault injection and supervised recovery (:mod:`repro.resilience`).

    ``faults`` is a fault-plan string (see
    :meth:`repro.resilience.FaultPlan.parse`; empty = no injection and
    every hook stays a None-check).  ``supervise`` wraps the run in the
    restart loop: up to ``max_restarts`` respawn-restore-replay cycles
    after typed worker failures.  ``ring_every``/``ring_keep``/
    ``ring_dir`` configure the durable checkpoint ring the supervisor
    restores from (``ring_every=0`` leaves ring checkpointing off;
    the supervisor then restarts failed runs from step 0).
    ``heartbeat_timeout`` is documentation of the reply deadline the
    executor enforces (the env knob ``REPRO_MP_TIMEOUT`` overrides).
    """

    faults: str = ""
    supervise: bool = False
    max_restarts: int = 2
    heartbeat_timeout: float = 600.0
    ring_dir: str | None = None
    ring_every: int = 0
    ring_keep: int = 3


@dataclass(frozen=True)
class ScheduleSpec:
    """How long to train and what to do along the way.

    ``batch_size`` defaults to the model config's minibatch (single
    process) or global minibatch (distributed).  ``lr_schedule`` names an
    entry of :data:`~repro.train.registry.LR_SCHEDULES` plus its kwargs,
    e.g. ``{"name": "warmup_decay", "peak_lr": 0.2, "warmup_steps": 10}``.
    ``early_stop`` configures the early-stopping callback, e.g.
    ``{"monitor": "auc", "patience": 3, "min_delta": 0.0}``.
    """

    steps: int = 100
    batch_size: int | None = None
    eval_every: int = 0
    eval_size: int = 2048
    eval_index: int = 10_000_000
    log_every: int = 0
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    lr_schedule: dict[str, Any] | None = None
    early_stop: dict[str, Any] | None = None


@dataclass(frozen=True)
class RunSpec:
    """A complete experiment: the unit the Trainer, CLI and checkpoints share."""

    name: str = "run"
    model: ModelSpec = field(default_factory=ModelSpec)
    data: DataSpec = field(default_factory=DataSpec)
    optimizer: OptimizerSpec = field(default_factory=OptimizerSpec)
    update: UpdateSpec = field(default_factory=UpdateSpec)
    precision: PrecisionSpec = field(default_factory=PrecisionSpec)
    parallel: ParallelSpec = field(default_factory=ParallelSpec)
    tiering: TieringSpec = field(default_factory=TieringSpec)
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Cross-field consistency; raises ValueError on a bad spec."""
        if self.model.config not in CONFIGS:
            raise ValueError(
                f"model.config must name a paper preset {sorted(CONFIGS)}, "
                f"got {self.model.config!r}"
            )
        if self.optimizer.name not in OPTIMIZERS:
            raise ValueError(
                f"optimizer.name {self.optimizer.name!r} not registered; "
                f"have {OPTIMIZERS.names()}"
            )
        if self.data.name not in DATASETS:
            raise ValueError(
                f"data.name {self.data.name!r} not registered; have {DATASETS.names()}"
            )
        if self.data.prefetch_depth < 1:
            raise ValueError("data.prefetch_depth must be >= 1")
        if self.update.name not in UPDATE_STRATEGIES:
            raise ValueError(
                f"update.name {self.update.name!r} not registered; "
                f"have {UPDATE_STRATEGIES.names()}"
            )
        if self.precision.storage not in ("fp32", "split_bf16"):
            raise ValueError(
                f"precision.storage must be fp32 or split_bf16, "
                f"got {self.precision.storage!r}"
            )
        if not 0 <= self.precision.lo_bits <= 16:
            raise ValueError("precision.lo_bits must be in [0, 16]")
        split_storage = self.precision.storage == "split_bf16"
        split_opt = self.optimizer.name == "split_sgd"
        if split_storage != split_opt:
            raise ValueError(
                "Split-BF16 storage and the split_sgd optimizer imply each "
                f"other (storage={self.precision.storage!r}, "
                f"optimizer={self.optimizer.name!r}); the lo halves live on "
                "both sides of the model/optimizer boundary"
            )
        if self.parallel.ranks < 1:
            raise ValueError("parallel.ranks must be >= 1")
        from repro.parallel.placement import PLACEMENTS

        if (
            isinstance(self.parallel.placement, str)
            and self.parallel.placement not in PLACEMENTS
        ):
            raise ValueError(
                f"parallel.placement {self.parallel.placement!r} not "
                f"registered; have {sorted(PLACEMENTS)}"
            )
        if self.parallel.exec_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel.exec_backend must be 'thread' or 'process', "
                f"got {self.parallel.exec_backend!r}"
            )
        if self.parallel.exec_workers is not None and self.parallel.exec_workers < 1:
            raise ValueError("parallel.exec_workers must be >= 1 (or null)")
        if self.parallel.bucket_mb <= 0:
            raise ValueError("parallel.bucket_mb must be positive")
        if self.parallel.exec_backend == "process" and self.parallel.ranks < 2:
            raise ValueError(
                "parallel.exec_backend='process' needs parallel.ranks >= 2 "
                "(single-process runs have no ranks to place in workers)"
            )
        if self.tiering.hot_rows < 0:
            raise ValueError("tiering.hot_rows must be non-negative")
        if not 0.0 <= self.tiering.coverage_threshold <= 1.0:
            raise ValueError("tiering.coverage_threshold must be in [0, 1]")
        if self.tiering.min_table_rows < 0:
            raise ValueError("tiering.min_table_rows must be non-negative")
        if self.tiering.profile_batches < 0:
            raise ValueError("tiering.profile_batches must be non-negative")
        if self.tiering.enabled and self.precision.storage != "fp32":
            raise ValueError(
                "tiering.enabled requires precision.storage='fp32' "
                "(Split-BF16 tables keep their lo half with the optimizer "
                "and always stay flat)"
            )
        res = self.resilience
        if res.max_restarts < 0:
            raise ValueError("resilience.max_restarts must be non-negative")
        if res.heartbeat_timeout <= 0:
            raise ValueError("resilience.heartbeat_timeout must be positive")
        if res.ring_every < 0:
            raise ValueError("resilience.ring_every must be non-negative")
        if res.ring_keep < 1:
            raise ValueError("resilience.ring_keep must be >= 1")
        if res.faults:
            from repro.resilience.faults import FaultPlan

            try:
                FaultPlan.parse(res.faults)
            except ValueError as exc:
                raise ValueError(f"resilience.faults: {exc}") from exc
        if self.schedule.steps < 0:
            raise ValueError("schedule.steps must be non-negative")
        if self.schedule.lr_schedule is not None:
            sched = dict(self.schedule.lr_schedule)
            name = sched.pop("name", None)
            if name not in LR_SCHEDULES:
                raise ValueError(
                    f"schedule.lr_schedule.name {name!r} not registered; "
                    f"have {LR_SCHEDULES.names()}"
                )

    # -- round trip ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-values dict; ``from_dict`` inverts it exactly."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise TypeError(f"RunSpec wants a mapping, got {type(data).__name__}")
        sections = {
            "model": ModelSpec,
            "data": DataSpec,
            "optimizer": OptimizerSpec,
            "update": UpdateSpec,
            "precision": PrecisionSpec,
            "parallel": ParallelSpec,
            "tiering": TieringSpec,
            "resilience": ResilienceSpec,
            "schedule": ScheduleSpec,
        }
        unknown = sorted(set(data) - set(sections) - {"name"})
        if unknown:
            raise ValueError(f"RunSpec: unknown sections {unknown}")
        kwargs: dict[str, Any] = {"name": data.get("name", "run")}
        for key, section_cls in sections.items():
            if key in data:
                kwargs[key] = _from_mapping(section_cls, data[key], f"RunSpec.{key}")
        return cls(**kwargs)

    # -- overlay / mutation ---------------------------------------------------

    def with_overrides(self, overrides: dict[str, Any]) -> "RunSpec":
        """A new validated spec with dotted-path fields replaced.

        Keys are ``"section.field"`` paths (``"parallel.bucket_mb"``,
        ``"schedule.batch_size"``, or plain ``"name"``); values replace
        the named field via ``dataclasses.replace``, so the result is a
        fresh frozen spec that re-runs :meth:`validate`.  This is the
        mutation primitive the ``repro.tune`` search uses to overlay one
        knob assignment onto a base spec::

            spec.with_overrides({"parallel.exec_backend": "process",
                                 "schedule.batch_size": 256})

        Raises ``ValueError`` on unknown sections/fields and whenever
        the overlaid spec fails cross-field validation.
        """
        by_section: dict[str, dict[str, Any]] = {}
        top: dict[str, Any] = {}
        for path, value in overrides.items():
            if "." not in path:
                if path != "name":
                    raise ValueError(
                        f"override path {path!r} must be 'name' or 'section.field'"
                    )
                top[path] = value
                continue
            section, field_name = path.split(".", 1)
            if "." in field_name:
                raise ValueError(
                    f"override path {path!r} nests too deep; use 'section.field'"
                )
            by_section.setdefault(section, {})[field_name] = value
        sections = {f.name for f in fields(self)} - {"name"}
        replacements: dict[str, Any] = dict(top)
        for section, updates in by_section.items():
            if section not in sections:
                raise ValueError(
                    f"override section {section!r} unknown; have {sorted(sections)}"
                )
            current = getattr(self, section)
            known = {f.name for f in fields(current)}
            unknown = sorted(set(updates) - known)
            if unknown:
                raise ValueError(
                    f"override fields {unknown} unknown in RunSpec.{section}; "
                    f"known: {sorted(known)}"
                )
            replacements[section] = dataclasses.replace(current, **updates)
        return dataclasses.replace(self, **replacements)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "RunSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- builders ----------------------------------------------------------

    def build_config(self) -> DLRMConfig:
        return self.model.build_config()

    def build_model(
        self, cfg: DLRMConfig | None = None, table_ids: list[int] | None = None
    ) -> DLRM:
        cfg = cfg or self.build_config()
        return DLRM(
            cfg,
            seed=self.model.seed,
            engine=self.model.engine,
            storage=self.precision.storage,
            lo_bits=self.precision.lo_bits,
            table_ids=table_ids,
        )

    def build_dataset(self, cfg: DLRMConfig | None = None):
        cfg = cfg or self.build_config()
        return DATASETS.create(
            self.data.name, cfg=cfg, seed=self.data.seed, **self.data.kwargs
        )

    def build_strategy(self) -> UpdateStrategy:
        return UPDATE_STRATEGIES.create(self.update.name, threads=self.update.threads)

    def build_optimizer(self, strategy: UpdateStrategy | None = None) -> SGD:
        strategy = strategy or self.build_strategy()
        kwargs = dict(self.optimizer.kwargs)
        if self.optimizer.name == "split_sgd":
            kwargs.setdefault("lo_bits", self.precision.lo_bits)
        opt = OPTIMIZERS.create(
            self.optimizer.name, lr=self.optimizer.lr, strategy=strategy, **kwargs
        )
        if isinstance(opt, SplitSGD) and opt.lo_bits != self.precision.lo_bits:
            raise ValueError(
                f"optimizer lo_bits {opt.lo_bits} != precision.lo_bits "
                f"{self.precision.lo_bits}"
            )
        return opt

    def build_lr_schedule(self):
        """The configured LR schedule instance, or None."""
        if self.schedule.lr_schedule is None:
            return None
        kwargs = dict(self.schedule.lr_schedule)
        name = kwargs.pop("name")
        return LR_SCHEDULES.create(name, **kwargs)

    def train_batch_size(self, cfg: DLRMConfig | None = None) -> int:
        """The per-step batch size: explicit, or the config's default."""
        if self.schedule.batch_size is not None:
            return self.schedule.batch_size
        cfg = cfg or self.build_config()
        return cfg.global_minibatch if self.parallel.ranks > 1 else cfg.minibatch
