"""Callback protocol for the Trainer: hooks around steps, evals and runs.

The bespoke training loops this package replaces (``examples/*``,
``bench/convergence.py``) differed only in what they did *around* the
identical ``train_step`` call -- print a loss, evaluate AUC every k
steps, mutate the learning rate, stop early, save a checkpoint.  Each of
those is a :class:`Callback` here; the Trainer owns the loop and fires
the hooks in registration order.

Hooks receive the trainer, so callbacks can read the model, optimizer,
step counter and last evaluation, and can set ``trainer.should_stop``.
Ordering matters when callbacks communicate through trainer state:
register :class:`PeriodicEval` before :class:`EarlyStopping` so the
stopper sees the evaluation of the step that just finished.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.train.trainer import Trainer


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    def on_fit_start(self, trainer: "Trainer") -> None:
        """Called once when ``fit`` begins."""

    def on_step_start(self, trainer: "Trainer", step: int) -> None:
        """Called before each training step (``step`` is the global step)."""

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        """Called after each training step with its loss."""

    def on_eval(self, trainer: "Trainer", step: int, metrics: dict[str, float]) -> None:
        """Called after each evaluation with its metric dict."""

    def on_fit_end(self, trainer: "Trainer") -> None:
        """Called once when ``fit`` finishes (normally or early-stopped)."""


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: list[Callback] | tuple[Callback, ...] = ()):
        self.callbacks = list(callbacks)

    def on_fit_start(self, trainer: "Trainer") -> None:
        for cb in self.callbacks:
            cb.on_fit_start(trainer)

    def on_step_start(self, trainer: "Trainer", step: int) -> None:
        for cb in self.callbacks:
            cb.on_step_start(trainer, step)

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        for cb in self.callbacks:
            cb.on_step_end(trainer, step, loss)

    def on_eval(self, trainer: "Trainer", step: int, metrics: dict[str, float]) -> None:
        for cb in self.callbacks:
            cb.on_eval(trainer, step, metrics)

    def on_fit_end(self, trainer: "Trainer") -> None:
        for cb in self.callbacks:
            cb.on_fit_end(trainer)


class MetricLogger(Callback):
    """Records (step, loss) pairs and evaluation rows; optionally prints.

    ``history`` holds every step's loss; ``eval_history`` holds one dict
    per evaluation (step plus the metric values).  ``print_every > 0``
    also prints a line every that-many steps (the quickstart behaviour).
    """

    def __init__(self, print_every: int = 0):
        self.print_every = print_every
        self.history: list[tuple[int, float]] = []
        self.eval_history: list[dict[str, float]] = []

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        self.history.append((step, loss))
        if self.print_every and (step % self.print_every == 0):
            print(f"  step {step:4d}  loss = {loss:.4f}")

    def on_eval(self, trainer: "Trainer", step: int, metrics: dict[str, float]) -> None:
        self.eval_history.append({"step": step, **metrics})

    @property
    def losses(self) -> list[float]:
        return [loss for _, loss in self.history]


class PeriodicEval(Callback):
    """Evaluate every ``every`` steps (and optionally once at fit end).

    Runs ``trainer.evaluate()`` -- held-out batch, no training state
    disturbed -- then fires ``on_eval`` on the whole callback list and
    stores the result as ``trainer.last_eval``.
    """

    def __init__(self, every: int, at_end: bool = False):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.at_end = at_end

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if (step + 1) % self.every == 0:
            trainer.run_eval(step)

    def on_fit_end(self, trainer: "Trainer") -> None:
        if self.at_end and (trainer.step % self.every != 0):
            trainer.run_eval(trainer.step - 1)


class EarlyStopping(Callback):
    """Stop when a monitored metric stops improving.

    ``monitor`` is ``"loss"`` (training loss, checked every step) or any
    key of the evaluation dict (``"auc"``, ``"eval_loss"``, ... --
    checked whenever an evaluation lands).  ``mode`` is inferred:
    metrics containing ``loss`` minimise, everything else maximises.
    """

    def __init__(
        self,
        monitor: str = "loss",
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str | None = None,
    ):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = float(min_delta)
        self.mode = mode or ("min" if "loss" in monitor else "max")
        if self.mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {self.mode!r}")
        self.best: float | None = None
        self.stale = 0
        self.stopped_at: int | None = None

    def _observe(self, trainer: "Trainer", step: int, value: float) -> None:
        improved = self.best is None or (
            value < self.best - self.min_delta
            if self.mode == "min"
            else value > self.best + self.min_delta
        )
        if improved:
            self.best = value
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self.patience:
                trainer.should_stop = True
                self.stopped_at = step

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if self.monitor == "loss":
            self._observe(trainer, step, loss)

    def on_eval(self, trainer: "Trainer", step: int, metrics: dict[str, float]) -> None:
        if self.monitor in metrics:
            self._observe(trainer, step, metrics[self.monitor])


class LRScheduleCallback(Callback):
    """Drive the optimizer's learning rate from a schedule.

    The schedule only needs an ``lr_at(step)`` method (e.g.
    :class:`repro.core.schedule.WarmupDecaySchedule`).  The rate is a
    pure function of the *global* step, so a resumed run replays the
    exact schedule -- the property the resume-bit-identity test pins.
    """

    def __init__(self, schedule: Any):
        if not hasattr(schedule, "lr_at"):
            raise TypeError("schedule must expose lr_at(step)")
        self.schedule = schedule
        self.last_lr: float | None = None

    def on_step_start(self, trainer: "Trainer", step: int) -> None:
        self.last_lr = float(self.schedule.lr_at(step))
        for opt in trainer.all_optimizers():
            opt.lr = self.last_lr


class CheckpointCallback(Callback):
    """Save a checkpoint every ``every`` steps (and at fit end).

    Files land in ``directory/step_<n>.npz``; ``latest`` tracks the most
    recent path for easy resumption.
    """

    def __init__(self, directory: str | Path, every: int):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.directory = Path(directory)
        self.every = every
        self.latest: Path | None = None

    def _save(self, trainer: "Trainer") -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"step_{trainer.step}.npz"
        trainer.save_checkpoint(path)
        self.latest = path

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if (step + 1) % self.every == 0:
            self._save(trainer)

    def on_fit_end(self, trainer: "Trainer") -> None:
        if self.latest is None or self.latest.name != f"step_{trainer.step}.npz":
            self._save(trainer)


class StepTimer(Callback):
    """Wall-clock profiler hook: per-step times and a summary.

    ``times`` holds one wall-time per executed step; ``mean_ms``/
    ``total_s``/``percentile_ms`` summarise, and :meth:`summary` renders
    the distribution (p50/p95/p99) -- plus, when handed drained tracer
    spans, the per-stage breakdown -- as printable lines.  (The
    simulated cluster has its own virtual clocks; this measures the
    *host* loop, which is what you tune when the trainer itself is the
    bottleneck.)
    """

    def __init__(self) -> None:
        self.times: list[float] = []
        self._t0: float | None = None

    def on_step_start(self, trainer: "Trainer", step: int) -> None:
        self._t0 = time.perf_counter()

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if self._t0 is not None:
            self.times.append(time.perf_counter() - self._t0)
            self._t0 = None

    @property
    def total_s(self) -> float:
        return sum(self.times)

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.total_s / len(self.times) if self.times else 0.0

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile step time in ms (nearest-rank)."""
        if not (0.0 <= q <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        if not self.times:
            return 0.0
        ordered = sorted(self.times)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return 1e3 * ordered[rank]

    def summary(self, spans: list[dict] | None = None) -> str:
        """Printable step-time summary; pass drained tracer spans (e.g.
        ``trainer.drain_trace_spans()``) to append the per-stage table."""
        lines = [
            f"steps: {len(self.times)}  total {self.total_s:.3f} s  "
            f"mean {self.mean_ms:.3f} ms  "
            f"p50 {self.percentile_ms(50):.3f} ms  "
            f"p95 {self.percentile_ms(95):.3f} ms  "
            f"p99 {self.percentile_ms(99):.3f} ms"
        ]
        if spans:
            from repro.obs.aggregate import stage_table
            from repro.perf.report import format_table

            lines.append(format_table(stage_table(spans)))
        return "\n".join(lines)
