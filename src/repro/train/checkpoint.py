"""Bit-exact, durable ``.npz`` checkpoints: model + optimizer + step + spec.

A checkpoint is a flat dict of numpy arrays (``np.savez``), so nothing
is pickled and every tensor round-trips bit-for-bit -- including the
uint16 hi/lo halves of Split-BF16 storage, momentum velocities and
Adagrad accumulators.  Layout::

    model.<key>   one entry per DLRM.state_dict() key
    opt.<key>     one entry per optimizer state_dict() key
    meta.step     global step count (int64 scalar)
    meta.spec     the RunSpec as JSON (unicode scalar; empty if unknown)
    meta.version  checkpoint format version
    meta.crc      JSON {key: crc32-of-bytes} over every other entry

Durability (format v2): writes land in a same-directory temp file that
is fsynced and ``os.replace``-d into place, so a crash mid-write can
never leave a half-written file under the real name; every array's
CRC32 rides in ``meta.crc`` and is verified on load, so silent
corruption surfaces as a typed
:class:`~repro.resilience.errors.CheckpointCorrupt` instead of NaNs ten
steps later.  v1 files (no ``meta.crc``) still load, unverified.

Because the spec rides along, :func:`build_from_checkpoint` can
reconstruct the full training state from the file alone -- which is what
``repro train --resume``, ``repro eval`` and
``serve.InferenceEngine.from_checkpoint`` build on.
"""

from __future__ import annotations

import json
import os
import zlib
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.model import DLRM
from repro.core.optim import SGD
from repro.resilience.errors import CheckpointCorrupt
from repro.train.spec import RunSpec
from repro.util import retry

FORMAT_VERSION = 2

_MODEL = "model."
_OPT = "opt."


def _crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


@dataclass
class Checkpoint:
    """An in-memory checkpoint: states + step + (optional) spec."""

    model_state: dict[str, np.ndarray]
    opt_state: dict[str, np.ndarray]
    step: int
    spec: RunSpec | None

    def require_spec(self) -> RunSpec:
        if self.spec is None:
            raise ValueError(
                "checkpoint carries no RunSpec; it can be loaded into an "
                "existing model but not rebuilt from the file alone"
            )
        return self.spec


def save_state(
    path: str | Path,
    model_state: dict[str, np.ndarray],
    opt_state: dict[str, np.ndarray] | None = None,
    step: int = 0,
    spec: RunSpec | None = None,
) -> None:
    """Write already-extracted state dicts as one durable ``.npz``:
    CRCs computed, temp file fsynced, then atomically renamed into
    place (transient I/O errors are retried with seeded backoff)."""
    arrays: dict[str, np.ndarray] = {}
    for key, value in model_state.items():
        arrays[_MODEL + key] = value
    for key, value in (opt_state or {}).items():
        arrays[_OPT + key] = value
    arrays["meta.step"] = np.int64(step)
    arrays["meta.spec"] = np.str_(spec.to_json() if spec is not None else "")
    arrays["meta.version"] = np.int64(FORMAT_VERSION)
    arrays["meta.crc"] = np.str_(
        json.dumps({k: _crc(np.asarray(v)) for k, v in sorted(arrays.items())})
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Same-directory temp name so os.replace stays a same-filesystem
    # atomic rename; pid-suffixed so concurrent writers never collide.
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")

    def _write() -> None:
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    retry(_write, attempts=3, backoff=0.05, jitter_seed=str(path))


def save_checkpoint(
    path: str | Path,
    model: DLRM,
    optimizer: SGD | None = None,
    step: int = 0,
    spec: RunSpec | None = None,
) -> None:
    """Checkpoint a single-process model (+ optimizer) to ``path``."""
    opt_state = None
    if optimizer is not None:
        opt_state = optimizer.state_dict(model.parameters(), model.tables)
    save_state(path, model.state_dict(), opt_state, step=step, spec=spec)


def load_checkpoint(path: str | Path, verify: bool = True) -> Checkpoint:
    """Read a ``.npz`` checkpoint back into a :class:`Checkpoint`.

    With ``verify`` (the default), every array's CRC32 is checked
    against ``meta.crc``; an unreadable archive or a CRC mismatch
    raises :class:`CheckpointCorrupt` (v1 files without CRCs load
    unverified).
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: np.asarray(data[k]) for k in data.files}
    except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
        raise CheckpointCorrupt(str(path), f"unreadable archive ({exc})") from exc
    if verify and "meta.crc" in arrays:
        want = json.loads(str(arrays["meta.crc"]))
        bad = sorted(
            k
            for k, crc in want.items()
            if k not in arrays or _crc(arrays[k]) != crc
        ) + sorted(k for k in arrays if k != "meta.crc" and k not in want)
        if bad:
            raise CheckpointCorrupt(str(path), f"CRC mismatch on {bad}", bad_keys=bad)
    model_state = {
        k[len(_MODEL) :]: v for k, v in arrays.items() if k.startswith(_MODEL)
    }
    opt_state = {k[len(_OPT) :]: v for k, v in arrays.items() if k.startswith(_OPT)}
    step = int(arrays["meta.step"]) if "meta.step" in arrays else 0
    spec_json = str(arrays["meta.spec"]) if "meta.spec" in arrays else ""
    spec = RunSpec.from_json(spec_json) if spec_json else None
    return Checkpoint(model_state=model_state, opt_state=opt_state, step=step, spec=spec)


def restore(
    model: DLRM, optimizer: SGD | None, ckpt: Checkpoint | str | Path
) -> Checkpoint:
    """Load a checkpoint's states into existing objects; returns it."""
    if not isinstance(ckpt, Checkpoint):
        ckpt = load_checkpoint(ckpt)
    model.load_state_dict(ckpt.model_state)
    if optimizer is not None and ckpt.opt_state:
        optimizer.load_state_dict(ckpt.opt_state, model.parameters(), model.tables)
    return ckpt


def build_from_checkpoint(
    path: str | Path,
) -> tuple[DLRM, SGD, Checkpoint]:
    """Reconstruct (model, optimizer, checkpoint) from the file alone.

    The embedded RunSpec rebuilds the exact architecture and optimizer
    (always as a full single-process replica, whatever parallelism the
    run used -- distributed checkpoints are saved consolidated), then
    the saved tensors overwrite the fresh initialisation bit-exactly.
    """
    ckpt = load_checkpoint(path)
    spec = ckpt.require_spec()
    cfg = spec.build_config()
    model = spec.build_model(cfg)
    optimizer = spec.build_optimizer()
    optimizer.register(model.parameters())
    restore(model, optimizer, ckpt)
    return model, optimizer, ckpt
