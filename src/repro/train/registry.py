"""String-keyed component registries: the extension points of ``repro.train``.

Every pluggable piece of the experiment API -- optimizers, sparse update
strategies, datasets, learning-rate schedules, and the serving stack's
micro-batching and routing policies -- is reachable through a
:class:`Registry`, so a :class:`~repro.train.spec.RunSpec` can name
components by string and third-party code can add its own without
touching this package::

    from repro.train import OPTIMIZERS

    @OPTIMIZERS.register("lars")
    def make_lars(lr, strategy=None, **kw):
        return MyLARS(lr, strategy, **kw)

    spec = RunSpec.from_dict({..., "optimizer": {"name": "lars", "lr": 0.1}})

The registries replace the ad-hoc ``make_strategy``-style lookups the
seed spread across modules; :func:`repro.core.update.make_strategy` now
delegates here.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.optim import SGD, MasterWeightSGD, SparseAdagrad, SplitSGD
from repro.core.schedule import WarmupDecaySchedule
from repro.core.update import (
    FusedBackwardUpdate,
    RaceFreeUpdate,
    STRATEGIES,
    UpdateStrategy,
)
from repro.data.criteo import SyntheticCriteoDataset
from repro.data.synthetic import RandomRecDataset
from repro.serve.batcher import MicroBatcher, POLICIES
from repro.serve.replica import ROUTERS, Router


class Registry:
    """A named string -> factory mapping with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(
        self, name: str, factory: Callable[..., Any] | None = None, *, override: bool = False
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises unless ``override=True``
        (a typo silently shadowing a builtin is worse than an error).
        """
        if factory is None:
            def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
                self.register(name, fn, override=override)
                return fn

            return deco
        if not override and name in self._factories:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory
        return factory

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def create(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**kwargs)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"


#: Optimizers: ``factory(lr, strategy=None, **kwargs) -> SGD``.
OPTIMIZERS = Registry("optimizer")
OPTIMIZERS.register("sgd", SGD)
OPTIMIZERS.register("split_sgd", SplitSGD)
OPTIMIZERS.register("adagrad", SparseAdagrad)
OPTIMIZERS.register("master_weight", MasterWeightSGD)

#: Sparse update strategies (paper Sect. III-A): ``factory(threads=28)``.
UPDATE_STRATEGIES = Registry("update strategy")


def _strategy_factory(cls: type[UpdateStrategy]) -> Callable[..., UpdateStrategy]:
    threaded = cls in (RaceFreeUpdate, FusedBackwardUpdate)

    def make(threads: int = 28) -> UpdateStrategy:
        return cls(threads) if threaded else cls()

    return make


for _name, _cls in STRATEGIES.items():
    UPDATE_STRATEGIES.register(_name, _strategy_factory(_cls))

#: Datasets: ``factory(cfg, seed=0, **kwargs) -> RandomRecDataset``.
DATASETS = Registry("dataset")
DATASETS.register("random", RandomRecDataset)
DATASETS.register("criteo", SyntheticCriteoDataset)

#: Learning-rate schedules: ``factory(**kwargs)`` with an ``lr_at(step)``.
LR_SCHEDULES = Registry("lr schedule")
LR_SCHEDULES.register("warmup_decay", WarmupDecaySchedule)

#: Serving micro-batch policies: ``factory(**kwargs) -> MicroBatcher``.
BATCH_POLICIES = Registry("batch policy")


def _batcher_factory(policy: str) -> Callable[..., MicroBatcher]:
    def make(**kwargs: Any) -> MicroBatcher:
        return MicroBatcher(policy=policy, **kwargs)

    return make


for _policy in POLICIES:
    BATCH_POLICIES.register(_policy, _batcher_factory(_policy))

#: Serving routers: ``factory(n_replicas) -> Router``.
ROUTE_POLICIES = Registry("router")


def _router_factory(policy: str) -> Callable[..., Router]:
    def make(n_replicas: int) -> Router:
        return Router(policy, n_replicas)

    return make


for _router in ROUTERS:
    ROUTE_POLICIES.register(_router, _router_factory(_router))
