"""Frequency-aware embedding tiering (hot/cold rows + placement planning).

The paper's scaling story is bottlenecked by embedding tables, and the
workload-characterization literature (Gupta et al., Acun et al.) shows a
small Zipf head of rows absorbing most look-ups.  This package turns
that skew into capacity and speed:

* :mod:`repro.tiering.freqstats` -- streaming per-table row-access
  frequency counters (exact for small tables, count-min + top-K for
  large ones), fed from :class:`~repro.core.embedding.EmbeddingBag`
  gathers or a profiling pass over the deterministic dataset, and
  seedable from the serving cache's hit statistics.
* :mod:`repro.tiering.planner` -- a placement planner that consumes a
  frequency snapshot plus :class:`~repro.hw.costmodel.CostModel` gather
  costs and emits a :class:`~repro.tiering.planner.TieredPlacement`
  (per-table flat vs. hot/cold storage, plus cost-balanced table-to-rank
  owners).  Registered as ``placement="auto"`` next to ``round_robin``
  and ``balanced``.
* :mod:`repro.tiering.store` -- :class:`~repro.tiering.store.TieredEmbeddingBag`,
  a two-tier row store: pinned-hot rows in a ``multiprocessing.shared_memory``
  arena, everything in an mmap-backed cold file, bit-identical to the
  flat table for a fixed plan.
"""

from repro.tiering.freqstats import FreqSnapshot, FreqStats, TableFreq
from repro.tiering.planner import (
    TablePlan,
    TieredPlacement,
    auto_placement,
    plan_from_spec,
    plan_placement,
)
from repro.tiering.store import TieredEmbeddingBag, apply_tiering

__all__ = [
    "FreqSnapshot",
    "FreqStats",
    "TableFreq",
    "TablePlan",
    "TieredPlacement",
    "TieredEmbeddingBag",
    "apply_tiering",
    "auto_placement",
    "plan_from_spec",
    "plan_placement",
]
