"""Streaming per-table row-access frequency statistics.

The tiering planner needs, per embedding table, an estimate of which
rows absorb the look-up traffic and how much of it they absorb.  Two
counter families cover the table-size spectrum:

* :class:`ExactCounter` -- one int64 slot per row.  Exact, cheap for the
  small/medium tables that dominate table *counts* in every config.
* :class:`SketchCounter` -- a count-min sketch plus an exact top-K heap,
  for tables whose row count makes a dense counter wasteful.  Count-min
  only ever *over*-estimates, and the planner consumes the top-K head
  (where relative error is smallest), so the hot set it extracts is
  robust to sketch collisions.

:class:`FreqStats` owns one counter per table and is fed three ways:

* ``record(table, indices)`` -- called directly with a batch's index
  vectors (the profiling pass of ``placement="auto"``),
* ``attach(model)`` -- installs a per-table hook on the model's
  :class:`~repro.core.embedding.EmbeddingBag` instances so every gather
  feeds the counters online during training/serving,
* ``seed_from_cache(cache)`` -- imports the serving cache's accumulated
  (table, row) hit frequencies as a warm start.

``snapshot()`` freezes the counters into an immutable
:class:`FreqSnapshot` the planner consumes; ``reset()`` clears them so
snapshots can window by epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Tables at or below this row count always get an exact counter.
EXACT_ROWS_THRESHOLD = 1 << 20

#: Default count-min geometry: 4 rows of 64K buckets = 2 MiB per table.
SKETCH_DEPTH = 4
SKETCH_WIDTH = 1 << 16

#: Odd 64-bit multipliers (splitmix64 constants) seeding the sketch's
#: per-depth universal hashes.
_HASH_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xD6E8FEB86659FD93,
    0xA5A5A5A5A5A5A5A5,
    0xC2B2AE3D27D4EB4F,
)


class ExactCounter:
    """Dense exact row-access counts for one table."""

    exact = True

    def __init__(self, rows: int):
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = int(rows)
        self.counts = np.zeros(self.rows, dtype=np.int64)
        self.total = 0

    def record(self, indices: np.ndarray) -> None:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.rows:
            raise IndexError("frequency indices out of range")
        self.counts += np.bincount(idx, minlength=self.rows)
        self.total += int(idx.size)

    def estimate(self, rows: np.ndarray) -> np.ndarray:
        return self.counts[np.asarray(rows, dtype=np.int64)]

    def topk(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """(row_ids, counts) of the ``k`` most-accessed rows.

        Ordered by descending count with ascending-row-id tie-breaks, so
        the hot set is deterministic across runs and processes.
        """
        k = min(int(k), self.rows)
        if k <= 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # Sort by (-count, row): lexsort's last key is primary.
        order = np.lexsort((np.arange(self.rows), -self.counts))[:k]
        return order.astype(np.int64), self.counts[order]

    def reset(self) -> None:
        self.counts[:] = 0
        self.total = 0


class SketchCounter:
    """Count-min sketch + exact top-K head for one large table.

    The sketch answers point estimates with one-sided error (never an
    undercount); the top-K head keeps the exact identity of the heavy
    hitters the planner pins hot.  Membership of the head is maintained
    lazily: each ``record`` re-ranks the union of the current head and
    the batch's distinct rows by sketch estimate.
    """

    exact = False

    def __init__(
        self,
        rows: int,
        k: int = 65536,
        width: int = SKETCH_WIDTH,
        depth: int = SKETCH_DEPTH,
    ):
        if rows <= 0:
            raise ValueError("rows must be positive")
        if not 1 <= depth <= len(_HASH_MULTIPLIERS):
            raise ValueError(f"depth must be in [1, {len(_HASH_MULTIPLIERS)}]")
        if width < 16:
            raise ValueError("width must be >= 16")
        self.rows = int(rows)
        self.k = int(k)
        self.width = int(width)
        self.depth = int(depth)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0
        #: Exact candidate head: row -> last sketch estimate.
        self._head: dict[int, int] = {}

    def _buckets(self, rows: np.ndarray) -> np.ndarray:
        """(depth, n) bucket ids of ``rows`` under the universal hashes."""
        r = np.asarray(rows, dtype=np.uint64)
        out = np.empty((self.depth, r.shape[0]), dtype=np.int64)
        for d in range(self.depth):
            with np.errstate(over="ignore"):
                h = r * np.uint64(_HASH_MULTIPLIERS[d])
            out[d] = (h >> np.uint64(64 - 16)).astype(np.int64) % self.width
        return out

    def record(self, indices: np.ndarray) -> None:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.rows:
            raise IndexError("frequency indices out of range")
        uniq, counts = np.unique(idx, return_counts=True)
        buckets = self._buckets(uniq)
        for d in range(self.depth):
            np.add.at(self.table[d], buckets[d], counts)
        self.total += int(idx.size)
        # Refresh the head over (current head + this batch's rows).
        cand = np.union1d(np.fromiter(self._head, dtype=np.int64, count=len(self._head)), uniq)
        est = self.estimate(cand)
        if cand.shape[0] > self.k:
            keep = np.lexsort((cand, -est))[: self.k]
            cand, est = cand[keep], est[keep]
        self._head = dict(zip(cand.tolist(), est.tolist()))

    def estimate(self, rows: np.ndarray) -> np.ndarray:
        r = np.asarray(rows, dtype=np.int64)
        if r.size == 0:
            return np.empty(0, dtype=np.int64)
        buckets = self._buckets(r)
        est = self.table[0][buckets[0]]
        for d in range(1, self.depth):
            est = np.minimum(est, self.table[d][buckets[d]])
        return est

    def topk(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        if not self._head or k <= 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        rows = np.fromiter(self._head, dtype=np.int64, count=len(self._head))
        counts = np.fromiter(self._head.values(), dtype=np.int64, count=len(self._head))
        order = np.lexsort((rows, -counts))[: min(int(k), rows.shape[0])]
        return rows[order], counts[order]

    def reset(self) -> None:
        self.table[:] = 0
        self.total = 0
        self._head = {}


def TableFreq(rows: int, exact_threshold: int = EXACT_ROWS_THRESHOLD, k: int = 65536):
    """The right counter for a table of ``rows`` rows."""
    if rows <= exact_threshold:
        return ExactCounter(rows)
    return SketchCounter(rows, k=k)


@dataclass(frozen=True)
class FreqSnapshot:
    """Immutable per-table frequency summary the planner consumes."""

    table_rows: tuple[int, ...]
    #: Per-table total recorded look-ups.
    totals: tuple[int, ...]
    #: Per-table (row_ids, counts) heads, descending count.
    heads: tuple[tuple[np.ndarray, np.ndarray], ...]
    #: Per-table exactness flag (False = count-min estimates).
    exact: tuple[bool, ...]

    def hot_set(self, table: int, budget_rows: int) -> tuple[np.ndarray, float]:
        """(hot_row_ids, coverage) for pinning ``budget_rows`` rows.

        ``coverage`` is the fraction of the table's recorded look-ups the
        hot set absorbs (0.0 when nothing was recorded).  Row ids come
        back sorted ascending -- the storage layout order.
        """
        rows, counts = self.heads[table]
        take = min(int(budget_rows), rows.shape[0])
        hot = rows[:take]
        total = self.totals[table]
        coverage = float(counts[:take].sum()) / total if total else 0.0
        return np.sort(hot), min(1.0, coverage)


class FreqStats:
    """Per-table streaming frequency counters for one model config."""

    def __init__(
        self,
        table_rows,
        exact_threshold: int = EXACT_ROWS_THRESHOLD,
        k: int = 65536,
    ):
        if not table_rows:
            raise ValueError("table_rows must be non-empty")
        self.table_rows = tuple(int(m) for m in table_rows)
        self.counters = [
            TableFreq(m, exact_threshold=exact_threshold, k=k) for m in self.table_rows
        ]
        self._attached: list = []

    # -- feeding -----------------------------------------------------------

    def record(self, table: int, indices: np.ndarray) -> None:
        self.counters[table].record(indices)

    def record_batch(self, batch) -> None:
        """Record every table's index vector of one training batch."""
        for t in range(len(self.table_rows)):
            self.record(t, batch.indices[t])

    def attach(self, model) -> None:
        """Install gather hooks on ``model``'s owned tables: every
        ``EmbeddingBag.forward`` feeds this object online.  Idempotent
        per table (re-attaching replaces the hook)."""
        for t, table in model.tables.items():
            def hook(indices, table_id=t):
                self.record(table_id, indices)
            table.freq_hook = hook
            self._attached.append(table)

    def detach(self) -> None:
        for table in self._attached:
            table.freq_hook = None
        self._attached = []

    def seed_from_cache(self, cache) -> None:
        """Warm-start from a serving cache's accumulated hit statistics
        (:meth:`repro.serve.cache.EmbeddingCache.row_frequencies`)."""
        for t, (rows, counts) in cache.row_frequencies().items():
            idx = np.asarray(rows, dtype=np.int64)
            cnt = np.asarray(counts, dtype=np.int64)
            if cnt.size:
                # Replay each (row, count) pair; repeats carry magnitude.
                self.counters[t].record(np.repeat(idx, cnt))

    # -- consuming ---------------------------------------------------------

    def snapshot(self, head_rows: int = 65536) -> FreqSnapshot:
        heads = tuple(c.topk(head_rows) for c in self.counters)
        return FreqSnapshot(
            table_rows=self.table_rows,
            totals=tuple(c.total for c in self.counters),
            heads=heads,
            exact=tuple(c.exact for c in self.counters),
        )

    def reset(self) -> None:
        for counter in self.counters:
            counter.reset()
