"""Cost-model-driven embedding placement and tiering planner.

Consumes a :class:`~repro.tiering.freqstats.FreqSnapshot` (row-access
frequencies from a profiling pass, live training, or the serving cache)
plus the :class:`~repro.hw.costmodel.CostModel` gather pricing, and
emits a :class:`TieredPlacement`:

* **per-table storage mode** -- ``hot_cold`` when a hot set within the
  per-table row budget absorbs enough of the look-up traffic (a Zipf
  head), ``flat`` otherwise (uniform traffic, or a table small enough
  that tiering buys nothing);
* **table-to-rank owners** -- greedy LPT over the predicted per-table
  gather cost under the chosen modes (frequency-weighted, hot-discounted)
  when frequencies are available, over table bytes otherwise.  Integer
  byte loads and table-id tie-breaks keep the result deterministic
  across runs and processes.

The planner is registered as ``placement="auto"`` next to
``round_robin`` and ``balanced`` (see :mod:`repro.parallel.placement`);
:func:`plan_from_spec` is the trainer/CLI entry point, which profiles a
few deterministic dataset batches -- the datasets are pure functions of
``(seed, batch_index)``, so a resumed or serving process recomputes the
*same* plan from the spec alone.

Scope: tables are still placed whole (rowwise cross-rank sharding of a
single table remains a roadmap item); tiering decides how each owned
table is *stored*, not where its rows live in the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DLRMConfig
from repro.obs.tracer import trace
from repro.tiering.freqstats import FreqSnapshot, FreqStats

#: Default per-table pinned-hot row budget.
DEFAULT_HOT_ROWS = 8192
#: Minimum fraction of a table's look-ups the hot set must absorb for
#: hot/cold storage to be worth the split gathers.
DEFAULT_COVERAGE_THRESHOLD = 0.5
#: Tables smaller than this stay flat: they fit in cache anyway.
DEFAULT_MIN_TABLE_ROWS = 2048


@dataclass(frozen=True)
class TablePlan:
    """Storage decision for one table."""

    table: int
    #: ``"flat"`` (plain contiguous FP32) or ``"hot_cold"`` (arena + mmap).
    mode: str
    #: Pinned-hot row ids, sorted ascending (empty when flat).
    hot_rows: np.ndarray
    #: Predicted fraction of look-ups the hot set serves (0.0 when flat).
    hot_coverage: float

    def __post_init__(self) -> None:
        if self.mode not in ("flat", "hot_cold"):
            raise ValueError(f"mode must be flat or hot_cold, got {self.mode!r}")


@dataclass(frozen=True)
class TieredPlacement:
    """The planner's full output: owners + per-table storage plans.

    Picklable (it rides to process-backend workers inside
    ``DistributedDLRM.init_kwargs``) and cheap to recompute: resume and
    serving paths rebuild it from the spec rather than persisting it.
    """

    owners: tuple[int, ...]
    plans: dict[int, TablePlan] = field(default_factory=dict)
    #: Predicted per-table gather seconds under the chosen modes.
    table_cost: tuple[float, ...] = ()
    #: Per-rank sums of ``table_cost`` under ``owners``.
    rank_cost: tuple[float, ...] = ()

    @property
    def tiered_tables(self) -> list[int]:
        return sorted(t for t, p in self.plans.items() if p.mode == "hot_cold")

    def hot_bytes(self, cfg: DLRMConfig) -> int:
        """Total pinned-hot arena bytes across all tables."""
        row_bytes = cfg.embedding_dim * 4
        return sum(
            int(p.hot_rows.size) * row_bytes
            for p in self.plans.values()
            if p.mode == "hot_cold"
        )

    def describe(self, cfg: DLRMConfig) -> list[dict[str, object]]:
        """One row per table for the ``repro plan`` report."""
        rows = []
        row_bytes = cfg.embedding_dim * 4
        for t in range(cfg.num_tables):
            plan = self.plans.get(t)
            mode = plan.mode if plan is not None else "flat"
            hot = int(plan.hot_rows.size) if plan is not None else 0
            rows.append(
                {
                    "table": t,
                    "rank": self.owners[t],
                    "rows": cfg.table_rows[t],
                    "mode": mode,
                    "hot_rows": hot,
                    "hot_mb": hot * row_bytes / 2**20,
                    "coverage": plan.hot_coverage if plan is not None else 0.0,
                    "gather_ms": (
                        self.table_cost[t] * 1e3 if self.table_cost else 0.0
                    ),
                }
            )
        return rows


def _default_cost():
    from repro.hw.costmodel import CostModel
    from repro.hw.spec import CLX_8280

    return CostModel(CLX_8280)


def plan_placement(
    cfg: DLRMConfig,
    n_ranks: int,
    snapshot: FreqSnapshot | None = None,
    cost=None,
    *,
    hot_rows: int = DEFAULT_HOT_ROWS,
    coverage_threshold: float = DEFAULT_COVERAGE_THRESHOLD,
    min_table_rows: int = DEFAULT_MIN_TABLE_ROWS,
) -> TieredPlacement:
    """Plan storage modes and owners for every table.

    With no ``snapshot`` (or one with nothing recorded) every table
    stays flat and owners fall back to byte-balanced LPT -- the planner
    never guesses a hot set it has no evidence for.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks > cfg.num_tables:
        raise ValueError(
            f"pure model parallelism: {n_ranks} ranks > {cfg.num_tables} tables"
        )
    if cost is None:
        cost = _default_cost()
    s = cfg.num_tables
    row_bytes = cfg.embedding_dim * 4
    have_freq = snapshot is not None and any(snapshot.totals)

    # -- per-table storage mode --------------------------------------------
    plans: dict[int, TablePlan] = {}
    flat = np.empty(0, dtype=np.int64)
    for t in range(s):
        mode, hot, coverage = "flat", flat, 0.0
        if (
            have_freq
            and hot_rows > 0
            and cfg.table_rows[t] >= min_table_rows
            and cfg.table_rows[t] > hot_rows
        ):
            cand, cand_cov = snapshot.hot_set(t, hot_rows)
            if cand.size and cand_cov >= coverage_threshold:
                mode, hot, coverage = "hot_cold", cand, cand_cov
        plans[t] = TablePlan(table=t, mode=mode, hot_rows=hot, hot_coverage=coverage)

    # -- per-table predicted gather cost ------------------------------------
    if have_freq:
        total = sum(snapshot.totals)
        lookups = [
            snapshot.totals[t] if snapshot.totals[t] else max(1, total // s)
            for t in range(s)
        ]
    else:
        lookups = [cfg.minibatch * cfg.lookups_per_table] * s
    table_cost = tuple(
        cost.tiered_gather_time(lookups[t], row_bytes, plans[t].hot_coverage)
        for t in range(s)
    )

    # -- owners: greedy LPT -------------------------------------------------
    # Frequency-informed runs balance predicted gather seconds; blind runs
    # balance table bytes (all-flat gather costs are degenerate there).
    # Integer byte loads + table-id ordering make both deterministic.
    if have_freq:
        weight = [table_cost[t] for t in range(s)]
    else:
        weight = [cfg.table_rows[t] * row_bytes for t in range(s)]
    order = sorted(range(s), key=lambda t: (-weight[t], t))
    owners = [0] * s
    load = [0] * n_ranks if not have_freq else [0.0] * n_ranks
    for i, t in enumerate(order):
        if i < n_ranks:
            rank = i  # seed every rank with one of the heaviest tables
        else:
            rank = min(range(n_ranks), key=lambda r: (load[r], r))
        owners[t] = rank
        load[rank] += weight[t]
    rank_cost = [0.0] * n_ranks
    for t in range(s):
        rank_cost[owners[t]] += table_cost[t]
    return TieredPlacement(
        owners=tuple(owners),
        plans=plans,
        table_cost=table_cost,
        rank_cost=tuple(rank_cost),
    )


def auto_placement(cfg: DLRMConfig, n_ranks: int) -> list[int]:
    """The ``placement="auto"`` registry entry.

    Called without frequency evidence (``make_placement`` passes only the
    config), so it reduces to deterministic byte-balanced LPT.  The
    trainer's :func:`plan_from_spec` path supersedes this with the
    frequency-informed plan whenever a spec is available.
    """
    return list(plan_placement(cfg, n_ranks).owners)


def profile_snapshot(
    spec, cfg: DLRMConfig | None = None, batches: int | None = None
) -> FreqSnapshot:
    """Record ``batches`` deterministic dataset batches into a snapshot.

    The datasets are pure functions of ``(seed, batch_index)``; profiling
    reads batches ``0 .. batches-1`` -- the same ones training will see
    -- without consuming anything, so every process that holds the spec
    derives the identical snapshot (and therefore the identical plan).
    """
    cfg = cfg or spec.build_config()
    n = spec.tiering.profile_batches if batches is None else batches
    dataset = spec.build_dataset(cfg)
    stats = FreqStats(cfg.table_rows)
    batch_size = spec.train_batch_size(cfg)
    for b in range(max(1, n)):
        stats.record_batch(dataset.batch(batch_size, b))
    return stats.snapshot(head_rows=max(65536, spec.tiering.hot_rows))


def plan_from_spec(spec, cfg: DLRMConfig | None = None, cost=None) -> TieredPlacement | None:
    """The trainer/serving/CLI entry point: plan for a full RunSpec.

    Returns ``None`` when the spec asks for neither ``placement="auto"``
    nor tiering -- callers keep their static-placement path untouched.
    Tiering decisions are gated to FP32 storage (Split-BF16's lo half
    lives with the optimizer; those tables always stay flat).
    """
    tier = spec.tiering
    if spec.parallel.placement != "auto" and not tier.enabled:
        return None
    cfg = cfg or spec.build_config()
    snapshot = None
    tier_storage = (tier.enabled or spec.parallel.placement == "auto") and (
        spec.precision.storage == "fp32"
    )
    with trace("tiering.plan", ranks=spec.parallel.ranks, tables=cfg.num_tables):
        if tier_storage and tier.profile_batches > 0:
            snapshot = profile_snapshot(spec, cfg)
        return plan_placement(
            cfg,
            spec.parallel.ranks,
            snapshot=snapshot,
            cost=cost,
            hot_rows=tier.hot_rows,
            coverage_threshold=tier.coverage_threshold,
            min_table_rows=tier.min_table_rows,
        )
