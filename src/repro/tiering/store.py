"""Two-tier embedding row store: shared-memory hot arena + mmap cold file.

:class:`TieredEmbeddingBag` keeps a pinned set of hot rows in a
``multiprocessing.shared_memory`` arena (the same
:class:`~repro.exec.mp.ShmArena` recipe the process backend mirrors
state through) and the full table in an mmap-backed cold file.  The
arena is authoritative for hot rows; the cold file is authoritative for
everything else, which lets tables whose total bytes exceed the arena
budget train and serve out-of-core -- the OS pages cold rows in and out
on demand.

Bit-identity contract (pinned by ``tests/tiering/test_store.py``): for
a *fixed* hot set, every operation -- gather, forward, backward,
``scatter_add_rows``, ``apply_bag_updates``, ``state_dict`` -- produces
bitwise the flat :class:`~repro.core.embedding.EmbeddingBag` result.
Gathered values are exact copies wherever the row lives, and the
scatter kernels fold each row's duplicate contributions in original
occurrence order: splitting an index vector by the hot mask keeps every
row's occurrences together and in order, so the per-row folds are the
flat kernel's folds.  Promotion/demotion (:meth:`retier`) moves rows
between tiers bit-exactly and is only ever invoked at epoch boundaries.
"""

from __future__ import annotations

import os
import tempfile
import weakref

import numpy as np

from repro.core.embedding import EmbeddingBag
from repro.exec.mp import ShmArena, shm_name
from repro.kernels.segment import scatter_add_bags, scatter_add_exact
from repro.obs.tracer import trace


def _cold_dir(cold_dir: str | None) -> str:
    """Resolve (and create) the directory holding cold-tier files."""
    if cold_dir is None:
        cold_dir = os.path.join(tempfile.gettempdir(), f"repro-tiering-{os.getpid()}")
    os.makedirs(cold_dir, exist_ok=True)
    return cold_dir


def _cleanup(arena: ShmArena | None, mmap_path: str) -> None:
    if arena is not None:
        arena.close()
        arena.unlink()
    try:
        os.unlink(mmap_path)
    except OSError:
        pass


class TieredEmbeddingBag(EmbeddingBag):
    """One embedding table split into a hot arena and a cold mmap file.

    ``hot_rows`` is the sorted pinned-hot row-id set (possibly empty:
    a pure out-of-core table).  ``share_hot=True`` places the hot tier
    in a named shared-memory arena; ``False`` keeps it in private
    memory (serving replicas that never fork).
    """

    storage = "fp32"

    def __init__(
        self,
        rows: int,
        dim: int,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
        hot_rows: np.ndarray | None = None,
        cold_dir: str | None = None,
        share_hot: bool = True,
        name_hint: str = "t",
    ):
        self._hot_rows = (
            np.empty(0, dtype=np.int64)
            if hot_rows is None
            else np.unique(np.asarray(hot_rows, dtype=np.int64))
        )
        if self._hot_rows.size and (
            self._hot_rows[0] < 0 or self._hot_rows[-1] >= rows
        ):
            raise ValueError("hot_rows out of range")
        self._cold_base = _cold_dir(cold_dir)
        self._share_hot = share_hot
        self._name_hint = name_hint
        super().__init__(rows, dim, rng=rng, weight=weight)

    # -- storage layer ------------------------------------------------------

    def _init_storage(self, w: np.ndarray) -> None:
        rows, dim = w.shape
        # Cold tier: the full table in an mmap-backed file.  Rows in the
        # hot set go stale here the moment training starts; state
        # assembly overlays the arena on top (see dense_weight).
        fd, self._cold_path = tempfile.mkstemp(
            prefix=f"cold-{self._name_hint}-", suffix=".bin", dir=self._cold_base
        )
        os.close(fd)
        self._cold = np.memmap(
            self._cold_path, dtype=np.float32, mode="w+", shape=(rows, dim)
        )
        self._cold[...] = w
        # Hot tier: the pinned rows, shared-memory arena or private.
        h = int(self._hot_rows.size)
        if self._share_hot:
            layout = ShmArena.layout_for(
                {"hot": np.empty((max(1, h), dim), dtype=np.float32)}
            )
            self._arena = ShmArena.create(shm_name(self._name_hint), layout)
            self._hot = self._arena.view("hot")[:h]
        else:
            self._arena = None
            self._hot = np.empty((h, dim), dtype=np.float32)
        if h:
            self._hot[...] = w[self._hot_rows]
        self._rebuild_slot_map()
        self._finalizer = weakref.finalize(
            self, _cleanup, self._arena, self._cold_path
        )

    def _rebuild_slot_map(self) -> None:
        #: is_hot mask + hot-slot translation (int32: row ids fit).
        self._is_hot = np.zeros(self.rows, dtype=bool)
        self._slot = np.zeros(self.rows, dtype=np.int64)
        if self._hot_rows.size:
            self._is_hot[self._hot_rows] = True
            self._slot[self._hot_rows] = np.arange(self._hot_rows.size)

    @property
    def weight(self) -> np.ndarray:
        # The flat table keeps ``weight`` as the storage tensor; tiered
        # storage has no single authoritative array, so anything asking
        # for one gets the assembled copy (tests, inspection).
        return self.dense_weight()

    @weight.setter
    def weight(self, value: np.ndarray) -> None:  # pragma: no cover - guard
        raise AttributeError(
            "TieredEmbeddingBag has no flat weight tensor; use "
            "load_state_dict or scatter_add_rows"
        )

    @property
    def hot_rows(self) -> np.ndarray:
        """The pinned-hot row ids (sorted ascending)."""
        return self._hot_rows

    @property
    def hot_bytes(self) -> int:
        return int(self._hot_rows.size) * self.dim * 4

    @property
    def cold_path(self) -> str:
        """Path of the mmap-backed cold file (deleted on :meth:`close`)."""
        return self._cold_path

    def hot_traffic_fraction(self, indices: np.ndarray) -> float:
        """Fraction of ``indices`` served by the hot arena.

        The virtual-clock charging in :mod:`repro.parallel.hybrid` prices
        tiered gathers with this per-batch hit rate (one bool gather --
        cheap next to the row copies it prices).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return 0.0
        return float(self._is_hot[indices].mean())

    def cold_bytes(self) -> int:
        return self.rows * self.dim * 4

    # -- tier maintenance ---------------------------------------------------

    def retier(self, hot_rows: np.ndarray) -> None:
        """Re-pin the hot set (epoch boundaries only).

        Flushes the current hot rows back to the cold file, then loads
        the new set -- every row's bits are preserved, so a retier
        between steps never changes a subsequent step's results beyond
        where rows are read from.
        """
        self.flush_hot()
        new = np.unique(np.asarray(hot_rows, dtype=np.int64))
        if new.size and (new[0] < 0 or new[-1] >= self.rows):
            raise ValueError("hot_rows out of range")
        h = int(new.size)
        if self._arena is not None:
            cap = self._arena.view("hot").shape[0]
            if h > cap:
                raise ValueError(
                    f"new hot set of {h} rows exceeds the arena capacity "
                    f"of {cap} rows; retier within the planned budget"
                )
            self._hot = self._arena.view("hot")[:h]
        else:
            self._hot = np.empty((h, self.dim), dtype=np.float32)
        self._hot_rows = new
        if h:
            self._hot[...] = self._cold[new]
        self._rebuild_slot_map()

    def flush_hot(self) -> None:
        """Write the authoritative hot rows back into the cold file."""
        if self._hot_rows.size:
            self._cold[self._hot_rows] = self._hot

    # -- compute layer ------------------------------------------------------

    def gather(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = np.empty((indices.shape[0], self.dim), dtype=np.float32)
        mask = self._is_hot[indices]
        hot_sel = np.flatnonzero(mask)
        cold_sel = np.flatnonzero(~mask)
        with trace("embedding.gather.tiered", hot=hot_sel.size, cold=cold_sel.size):
            if hot_sel.size:
                out[hot_sel] = self._hot[self._slot[indices[hot_sel]]]
            if cold_sel.size:
                out[cold_sel] = self._cold[indices[cold_sel]]
        return out

    def dense_weight(self) -> np.ndarray:
        full = np.array(self._cold, copy=True)
        if self._hot_rows.size:
            full[self._hot_rows] = self._hot
        return full

    def _split(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(hot positions, cold positions) of an index vector, each in
        original order -- the property the per-row fold order rests on."""
        indices = np.asarray(indices, dtype=np.int64)
        mask = self._is_hot[indices]
        return np.flatnonzero(mask), np.flatnonzero(~mask)

    def scatter_add_rows(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.float32)
        hot_sel, cold_sel = self._split(indices)
        if hot_sel.size:
            scatter_add_exact(
                self._hot, self._slot[indices[hot_sel]], deltas[hot_sel]
            )
        if cold_sel.size:
            scatter_add_exact(self._cold, indices[cold_sel], deltas[cold_sel])

    def scatter_add_rows_reference(
        self, indices: np.ndarray, deltas: np.ndarray
    ) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        hot_sel, cold_sel = self._split(indices)
        if hot_sel.size:
            np.add.at(self._hot, self._slot[indices[hot_sel]], deltas[hot_sel])
        if cold_sel.size:
            np.add.at(self._cold, indices[cold_sel], deltas[cold_sel])

    def apply_bag_updates(
        self, bag_grads: np.ndarray, bag_ids: np.ndarray, indices: np.ndarray
    ) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        bag_ids = np.asarray(bag_ids, dtype=np.int64)
        hot_sel, cold_sel = self._split(indices)
        if hot_sel.size:
            scatter_add_bags(
                self._hot,
                self._slot[indices[hot_sel]],
                bag_grads,
                bag_ids[hot_sel],
            )
        if cold_sel.size:
            scatter_add_bags(
                self._cold, indices[cold_sel], bag_grads, bag_ids[cold_sel]
            )

    def capacity_bytes(self) -> int:
        # RAM-resident bytes: the hot arena (the cold file is paged by
        # the OS and not counted against the training footprint).
        return self.hot_bytes

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """The flat-layout state: one assembled FP32 weight array, so
        tiered tables round-trip through the existing ``.npz`` path and
        the process backend's state arenas unchanged."""
        return {"weight": self.dense_weight()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "weight" not in state:
            raise KeyError("missing state entry 'weight'")
        value = np.asarray(state["weight"])
        if value.dtype != np.float32:
            raise ValueError(f"weight: dtype {value.dtype} != expected float32")
        if value.shape != (self.rows, self.dim):
            raise ValueError(
                f"weight: shape {value.shape} != expected {(self.rows, self.dim)}"
            )
        self._cold[...] = value
        if self._hot_rows.size:
            self._hot[...] = value[self._hot_rows]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the arena and delete the cold file (idempotent)."""
        self._finalizer()


def apply_tiering(model, plans, cold_dir: str | None = None, share_hot: bool = True):
    """Replace ``model``'s flat FP32 tables with tiered ones, per plan.

    ``plans`` maps table id -> :class:`~repro.tiering.planner.TablePlan`
    (or any object with ``mode`` and ``hot_rows``).  Only tables owned
    by ``model`` and planned ``hot_cold`` are converted; weights carry
    over bit-exactly.  Split-BF16 tables are never tiered (the lo half
    lives with the optimizer; tiering is scoped to FP32 storage).
    Returns the list of converted table ids.
    """
    converted: list[int] = []
    for t, table in model.tables.items():
        plan = plans.get(t) if hasattr(plans, "get") else plans[t]
        if plan is None or plan.mode != "hot_cold":
            continue
        if table.storage != "fp32":
            raise ValueError(
                f"table {t}: tiering requires fp32 storage, got {table.storage!r}"
            )
        model.tables[t] = TieredEmbeddingBag(
            table.rows,
            table.dim,
            weight=table.dense_weight(),
            hot_rows=plan.hot_rows,
            cold_dir=cold_dir,
            share_hot=share_hot,
            name_hint=f"t{t}",
        )
        converted.append(t)
    return converted
