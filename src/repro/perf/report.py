"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_seconds(seconds: float) -> str:
    """Human-readable duration (the paper reports ms per iteration)."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.0f} ns"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(v: object) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rendered = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rendered)
    out = f"{header}\n{sep}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> None:
    print(format_table(rows, columns, title, floatfmt))
