"""Instrumentation: the repo's two profilers plus table output.

Two complementary profilers coexist and answer different questions:

* **Virtual-time** (:class:`Profiler` + :class:`VirtualClock`, this
  package) -- deterministic *modelled* seconds charged per dot-separated
  category ("comm.alltoall.wait", "compute.mlp.fwd", ...).  Replaces the
  autograd profiling hooks the paper added to PyTorch's DDP and
  communication backends (Sect. IV-C); the report helpers aggregate the
  charges into the exact buckets of Figs. 10-15 (Compute /
  Communication, and Framework vs. Wait per collective).  Bitwise
  reproducible: a pure function of the charges, independent of the host.
* **Wall-clock** (:mod:`repro.obs`) -- *measured* nanosecond spans of
  the real execution paths (``data.synthesis``, ``embedding.gather``,
  ``mlp.gemm.*``, ``update.*``, serve stages), recorded into per-thread
  ring buffers, merged across the process backend's workers, and
  exported as JSONL / Chrome ``trace_event`` files.  This is what you
  look at when the *host* pipeline -- not the modelled cluster -- is the
  bottleneck.

The ``repro.obs`` surface is re-exported here so perf consumers find
both profilers in one place.
"""

from repro.obs import (
    TELEMETRY_SCHEMA,
    Tracer,
    aggregate,
    get_tracer,
    merge_spans,
    set_tracer,
    stage_breakdown,
    stage_table,
    trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.perf.clock import VirtualClock
from repro.perf.profiler import Profiler, COMM_BUCKETS
from repro.perf.report import format_table, format_seconds

__all__ = [
    # virtual-time profiler
    "VirtualClock",
    "Profiler",
    "COMM_BUCKETS",
    "format_table",
    "format_seconds",
    # wall-clock tracing (repro.obs re-exports)
    "TELEMETRY_SCHEMA",
    "Tracer",
    "trace",
    "get_tracer",
    "set_tracer",
    "aggregate",
    "merge_spans",
    "stage_breakdown",
    "stage_table",
    "write_chrome_trace",
    "write_jsonl",
]
