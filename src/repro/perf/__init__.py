"""Instrumentation: virtual clocks, per-category profilers, table output.

Replaces the autograd profiling hooks the paper added to PyTorch's DDP
and communication backends (Sect. IV-C): every charge lands in a
hierarchical category ("comm.alltoall.wait", "compute.mlp.fwd", ...), and
the report helpers aggregate them into the exact buckets of Figs. 10-15
(Compute / Communication, and Framework vs. Wait per collective).
"""

from repro.perf.clock import VirtualClock
from repro.perf.profiler import Profiler, COMM_BUCKETS
from repro.perf.report import format_table, format_seconds

__all__ = [
    "VirtualClock",
    "Profiler",
    "COMM_BUCKETS",
    "format_table",
    "format_seconds",
]
