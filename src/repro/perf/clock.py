"""A per-rank virtual clock for the simulated SPMD runtime."""

from __future__ import annotations


class VirtualClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (must be non-negative); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}s)"
