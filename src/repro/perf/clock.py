"""A per-rank virtual clock for the simulated SPMD runtime.

Virtual time is pure data: it advances only by explicit ``advance``
calls with model-derived durations, never by reading a host clock, so
clock values are **bit-identical** across execution backends, worker
counts and machines.  That determinism is what makes virtual-clock
throughput comparable across CI runners (``compare_bench.py``) and
tuning runs reproducible (``repro tune --measure virtual``).  Instances
are not thread-safe; each simulated rank owns its own clock.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (must be non-negative); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t`` if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}s)"
