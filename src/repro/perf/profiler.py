"""Hierarchical *virtual-time* category accounting.

This is the modelled-time half of the repo's profiling story: charges
are deterministic seconds computed by the cost model, accumulated per
dot-separated category.  The measured-time half -- wall-clock spans of
the real execution paths -- lives in :mod:`repro.obs` (see
:class:`repro.obs.Tracer`); the two deliberately share their category
vocabulary so a virtual breakdown and a wall-clock stage table read
side by side.

Category conventions used throughout the runtime:

* ``compute.*``            -- GEMMs, embedding kernels, elementwise ops
* ``data.loader``          -- minibatch parsing
* ``comm.<coll>.framework``-- flat-buffer packing / gradient averaging
* ``comm.<coll>.wait``     -- exposed wait time of collective <coll>
* ``update.*``             -- optimizer passes
* ``serve.*``              -- serving-side batch service and queueing

``COMM_BUCKETS`` maps those onto the four stacked series of the paper's
communication-breakdown plots (Figs. 11 and 14).
"""

from __future__ import annotations

from collections import defaultdict

#: Paper Fig. 11/14 series -> category prefix.
COMM_BUCKETS = {
    "Alltoall-Framework": "comm.alltoall.framework",
    "Allreduce-Framework": "comm.allreduce.framework",
    "Alltoall-Wait": "comm.alltoall.wait",
    "Allreduce-Wait": "comm.allreduce.wait",
}


class Profiler:
    """Accumulates seconds per dot-separated category."""

    def __init__(self) -> None:
        self._times: dict[str, float] = defaultdict(float)

    def add(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative time charge for {category!r}: {seconds}")
        if not category:
            raise ValueError("category must be non-empty")
        self._times[category] += seconds

    def get(self, category: str) -> float:
        """Exact-category time (0.0 if never charged)."""
        return self._times.get(category, 0.0)

    def total(self, prefix: str = "") -> float:
        """Sum over all categories equal to, or nested under, ``prefix``."""
        if not prefix:
            return sum(self._times.values())
        dotted = prefix + "."
        return sum(
            t for c, t in self._times.items() if c == prefix or c.startswith(dotted)
        )

    def categories(self) -> list[str]:
        return sorted(self._times)

    def as_dict(self) -> dict[str, float]:
        return dict(self._times)

    def merge(self, other: "Profiler") -> None:
        for c, t in other._times.items():
            self._times[c] += t

    def clear(self) -> None:
        self._times.clear()

    # -- paper-figure aggregations ----------------------------------------

    def compute_time(self) -> float:
        """The "Compute" series of Figs. 10/13 (everything that is not an
        exposed communication wait)."""
        return (
            self.total("compute")
            + self.total("update")
            + self.total("data")
            + self.total("comm.alltoall.framework")
            + self.total("comm.allreduce.framework")
        )

    def comm_time(self) -> float:
        """The "Communication" series of Figs. 10/13: exposed waits."""
        return self.total("comm.alltoall.wait") + self.total("comm.allreduce.wait")

    def comm_breakdown(self) -> dict[str, float]:
        """The four stacked series of Figs. 11/14."""
        return {name: self.total(prefix) for name, prefix in COMM_BUCKETS.items()}
