"""Typed failure taxonomy for :mod:`repro.resilience`.

Every class subclasses :class:`RuntimeError` so existing ``except
RuntimeError`` recovery paths (and tests matching on message text) keep
working; the subclasses add the structured fields a supervisor needs to
diagnose and recover -- which worker, which ranks, how stale its last
heartbeat was, whether the process is even alive.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base of every typed failure raised by the resilience machinery."""


class InjectedFault(ResilienceError):
    """Raised by a :class:`~repro.resilience.faults.FaultPoint` whose
    action is ``raise`` -- a deliberate, deterministic crash for chaos
    tests.  Never raised outside an armed fault plan."""


class CheckpointCorrupt(ResilienceError):
    """A checkpoint failed integrity verification (bad CRC, truncated
    archive, unreadable zip).  Carries the path and the offending keys
    so the ring can quarantine the file and fall back."""

    def __init__(self, path: str, detail: str, bad_keys: list[str] | None = None):
        self.path = str(path)
        self.bad_keys = list(bad_keys or [])
        super().__init__(f"corrupt checkpoint {path}: {detail}")


class WorkerFailure(ResilienceError):
    """A process-rank worker failed; base of timeout/crash variants.

    ``worker_index``/``rank_range`` identify the worker, ``alive`` says
    whether its process still exists, ``heartbeat_age`` is seconds since
    its last heartbeat stamp (None when no board was installed), and
    ``worker_traceback`` is the remote traceback when one crossed the
    pipe before the failure.
    """

    def __init__(
        self,
        message: str,
        worker_index: int | None = None,
        rank_range: tuple[int, int] | None = None,
        alive: bool | None = None,
        heartbeat_age: float | None = None,
        worker_traceback: str | None = None,
    ):
        self.worker_index = worker_index
        self.rank_range = rank_range
        self.alive = alive
        self.heartbeat_age = heartbeat_age
        self.worker_traceback = worker_traceback
        super().__init__(message)

    def diagnostics(self) -> dict:
        """The structured fields, JSON-ready (for recovery-event logs)."""
        return {
            "error": type(self).__name__,
            "message": str(self),
            "worker_index": self.worker_index,
            "rank_range": list(self.rank_range) if self.rank_range else None,
            "alive": self.alive,
            "heartbeat_age": self.heartbeat_age,
        }


class WorkerTimeout(WorkerFailure):
    """No reply from a worker within the deadline: either a silent hang
    (process alive, heartbeat stale) or a barrier deadlock."""


class WorkerCrash(WorkerFailure):
    """A worker died (process gone / pipe EOF) or reported an error;
    ``worker_traceback`` carries the remote traceback when it reported
    one before dying."""
