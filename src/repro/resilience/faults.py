"""Deterministic fault injection: :class:`FaultPlan` / :class:`FaultPoint`.

A fault plan is data -- a list of points, each naming an injection
*site* (a string the instrumented code fires at), an *action*, and
optional match keys (step, worker, replica, request, round sequence).
Sites fire with their runtime context; a point matches when every key it
pins equals the context value, and each point is armed for ``count``
firings (default one).  Matching is pure, so a plan injects the same
failure at the same place every run -- chaos tests stay reproducible.

Actions the plan applies itself at :meth:`FaultPlan.fire`:

``kill``
    ``os._exit`` -- the sudden-death worker failure (no cleanup, no
    barrier abort; the parent's liveness polling must catch it).
``hang``
    sleep ``seconds`` (default 3600) -- the silent-stall failure a
    heartbeat deadline must convert into a typed timeout.
``raise``
    raise :class:`~repro.resilience.errors.InjectedFault` -- an ordinary
    crash that travels the normal error path (traceback and all).
``delay``
    sleep ``seconds`` then continue -- a slow collective / straggler.

Actions the *call site* applies (fire returns the matched point):

``torn_write``
    mailbox publish lands with a stale round sequence (seqlock tear).
``corrupt``
    the just-written checkpoint file gets bytes flipped.
``die`` / ``slow`` / ``error``
    serve-replica failures, interpreted on virtual time by
    :mod:`repro.serve.degrade`.

The one-line syntax (``repro train --fault ...``)::

    worker.step:step=3,worker=1,action=kill;ckpt.save:step=6,action=corrupt

Known sites: ``train.step`` (parent loop, before the step),
``worker.step`` (inside a process-rank worker, before compute),
``comm.exchange`` (before a mailbox round: delay/kill/hang),
``mailbox.publish`` (torn_write), ``ckpt.save`` (corrupt, after write),
``serve.replica`` (die/slow/error, matched on replica and request
index).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.resilience.errors import InjectedFault

#: Exit status of a ``kill`` action -- distinctive in ``proc.exitcode``.
KILL_EXIT = 87

#: Context keys a point may pin; everything else in the fired context is
#: informational only.
_MATCH_KEYS = ("step", "worker", "replica", "request", "seq")

_SELF_APPLIED = ("kill", "hang", "raise", "delay")
_CALLER_APPLIED = ("torn_write", "corrupt", "die", "slow", "error")


@dataclass
class FaultPoint:
    """One armed failure: fire ``action`` at ``site`` when the pinned
    match keys equal the firing context, up to ``count`` times."""

    site: str
    action: str
    step: int | None = None
    worker: int | None = None
    replica: int | None = None
    request: int | None = None
    seq: int | None = None
    seconds: float = 0.0
    count: int = 1
    #: Firings left; decremented by :meth:`FaultPlan.fire`.
    remaining: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.action not in _SELF_APPLIED + _CALLER_APPLIED:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: "
                f"{_SELF_APPLIED + _CALLER_APPLIED}"
            )
        if self.remaining < 0:
            self.remaining = self.count

    def matches(self, site: str, ctx: dict[str, Any]) -> bool:
        if self.remaining <= 0 or site != self.site:
            return False
        for key in _MATCH_KEYS:
            want = getattr(self, key)
            if want is not None and ctx.get(key) != want:
                return False
        return True

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "action": self.action}
        for key in _MATCH_KEYS:
            if getattr(self, key) is not None:
                out[key] = getattr(self, key)
        if self.seconds:
            out["seconds"] = self.seconds
        if self.count != 1:
            out["count"] = self.count
        return out


class FaultPlan:
    """An ordered set of fault points plus a record of what fired.

    Plans are picklable (they ride to process-rank workers inside the
    build recipe), and *copies diverge*: a worker's plan decrements its
    own arming counts.  The parent-side supervisor therefore disarms its
    copy explicitly (:meth:`disarm_through`) before a respawn so replay
    does not re-fire the failure it is recovering from.
    """

    def __init__(self, points: list[FaultPoint] | None = None):
        self.points = list(points or [])
        #: Fired events, in firing order: {site, action, **ctx}.
        self.fired: list[dict[str, Any]] = []

    def __bool__(self) -> bool:
        return bool(self.points)

    def __len__(self) -> int:
        return len(self.points)

    # -- firing --------------------------------------------------------------

    def match(self, site: str, **ctx: Any) -> FaultPoint | None:
        """The first armed point matching ``site``/``ctx`` (decrements
        its arming count and records the event), or None."""
        for point in self.points:
            if point.matches(site, ctx):
                point.remaining -= 1
                self.fired.append({"site": site, "action": point.action, **ctx})
                return point
        return None

    def fire(self, site: str, **ctx: Any) -> FaultPoint | None:
        """Match, then apply self-applied actions (kill/hang/raise/delay).
        Returns the matched point so call sites can apply the rest
        (torn_write/corrupt/die/slow/error) themselves."""
        point = self.match(site, **ctx)
        if point is None:
            return None
        if point.action == "kill":
            os._exit(KILL_EXIT)
        elif point.action == "hang":
            time.sleep(point.seconds or 3600.0)
        elif point.action == "raise":
            raise InjectedFault(f"injected fault at {site} ({ctx})")
        elif point.action == "delay":
            time.sleep(point.seconds)
        return point

    def disarm_through(self, step: int) -> int:
        """Disarm every step-pinned point with ``point.step <= step``;
        returns how many were disarmed.  The supervisor calls this with
        the failure step before respawning, so the recovery replay runs
        past the old injection site untouched."""
        n = 0
        for point in self.points:
            if point.step is not None and point.step <= step and point.remaining > 0:
                point.remaining = 0
                n += 1
        return n

    # -- round trip ----------------------------------------------------------

    def to_dict(self) -> list[dict[str, Any]]:
        return [p.to_dict() for p in self.points]

    @classmethod
    def from_dict(cls, data: list[dict[str, Any]]) -> "FaultPlan":
        return cls([FaultPoint(**dict(p)) for p in data])

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the one-line CLI syntax (see module docstring)."""
        points: list[FaultPoint] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, _, rest = chunk.partition(":")
            site = site.strip()
            if not site or not rest:
                raise ValueError(
                    f"bad fault spec {chunk!r}: want 'site:key=val,...'"
                )
            kwargs: dict[str, Any] = {"site": site}
            for item in rest.split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not key or not value:
                    raise ValueError(f"bad fault spec item {item!r} in {chunk!r}")
                if key in _MATCH_KEYS or key == "count":
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs[key] = float(value)
                elif key == "action":
                    kwargs[key] = value
                else:
                    raise ValueError(
                        f"unknown fault key {key!r} in {chunk!r}; known: "
                        f"action, seconds, count, {', '.join(_MATCH_KEYS)}"
                    )
            if "action" not in kwargs:
                raise ValueError(f"fault spec {chunk!r} is missing action=")
            points.append(FaultPoint(**kwargs))
        return cls(points)

    def __str__(self) -> str:
        chunks = []
        for p in self.points:
            items = [f"{k}={v}" for k, v in p.to_dict().items() if k != "site"]
            chunks.append(f"{p.site}:{','.join(items)}")
        return ";".join(chunks)


def corrupt_file(path: str | Path, nbytes: int = 64) -> None:
    """Flip ``nbytes`` bytes in the middle of ``path`` in place -- the
    ``corrupt`` action's implementation (deterministic: fixed offset,
    fixed XOR mask)."""
    path = Path(path)
    size = path.stat().st_size
    offset = max(0, size // 2 - nbytes // 2)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        chunk = fh.read(nbytes)
        fh.seek(offset)
        fh.write(bytes(b ^ 0xFF for b in chunk))
