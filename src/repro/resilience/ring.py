"""Retained checkpoint ring with automatic fallback past corruption.

A :class:`CheckpointRing` owns one directory of step-stamped durable
checkpoints (``ckpt-00000040.npz`` …), keeps the newest ``keep`` files,
and loads "the latest *good* one": a candidate failing CRC/archive
verification is quarantined (renamed ``*.corrupt``) and the previous
entry is tried -- so a torn or bit-flipped latest checkpoint costs a few
extra replay steps, never the run.

:class:`RingCheckpoint` is the trainer callback flavour: save every N
steps plus one final save, all through the ring.  The supervisor
(:mod:`repro.resilience.supervisor`) restores from the same ring after a
worker failure.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.resilience.errors import CheckpointCorrupt
from repro.train.callbacks import Callback
from repro.train.checkpoint import Checkpoint, load_checkpoint

_ENTRY = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointRing:
    """The newest ``keep`` checkpoints of one run, as files."""

    def __init__(self, directory: str | Path, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, step: int) -> Path:
        return self.directory / f"ckpt-{step:08d}.npz"

    def entries(self) -> list[Path]:
        """Ring files, oldest first (quarantined files excluded)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.iterdir() if _ENTRY.match(p.name)
        )

    def save(self, trainer) -> Path:
        """Checkpoint ``trainer`` into the ring and prune old entries.

        Idempotent per step (replay after recovery rewrites the same
        file with the same bits -- the bit-exactness contract).
        """
        path = self.path_for(trainer.step)
        trainer.save_checkpoint(path)
        self.prune()
        return path

    def prune(self) -> None:
        for stale in self.entries()[: -self.keep]:
            stale.unlink(missing_ok=True)

    def load_latest(self) -> tuple[Checkpoint, Path] | None:
        """The newest verifiable checkpoint (with its path), walking
        past -- and quarantining -- corrupt entries.  None when the ring
        holds no loadable checkpoint."""
        for path in reversed(self.entries()):
            try:
                return load_checkpoint(path, verify=True), path
            except CheckpointCorrupt:
                quarantined = path.with_suffix(path.suffix + ".corrupt")
                path.replace(quarantined)
        return None


class RingCheckpoint(Callback):
    """Save into a :class:`CheckpointRing` every ``every`` steps, and
    once more at fit end (so the ring always holds the final state)."""

    def __init__(self, directory: str | Path, every: int, keep: int = 3):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.ring = CheckpointRing(directory, keep=keep)
        self.every = every

    def on_step_end(self, trainer, step: int, loss: float) -> None:
        if trainer.step % self.every == 0:
            self._save(trainer)

    def on_fit_end(self, trainer) -> None:
        if trainer.step and trainer.step % self.every != 0:
            self._save(trainer)

    def _save(self, trainer) -> None:
        path = self.ring.save(trainer)
        faults = getattr(trainer, "faults", None)
        if faults is not None:
            point = faults.fire("ckpt.save", step=trainer.step)
            if point is not None and point.action == "corrupt":
                from repro.resilience.faults import corrupt_file

                corrupt_file(path)
