"""Shared-memory worker heartbeats (:class:`HeartbeatBoard`).

One cache-line-ish record per process-rank worker -- last stamp time
(``time.monotonic_ns``; CLOCK_MONOTONIC is machine-wide, so parent and
worker clocks are directly comparable), last training step, and last
mailbox round sequence.  Workers stamp from their command loop and
piggyback a stamp on every transport round (the mailbox round header
already synchronizes the fleet, so a stamped sequence number doubles as
"I made it into round N"); the parent reads ages to tell a silent hang
from a slow step when a reply deadline expires.

Stamps are advisory, not synchronized: a torn read can only misreport an
age by one stamp interval, which is noise against the multi-second
deadlines that consult it.
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np

#: Per-worker record: (stamp monotonic ns, step, round seq).
_FIELDS = 3


class HeartbeatBoard:
    """A fixed ``(n_workers, 3)`` int64 grid in named shared memory."""

    def __init__(self, shm: shared_memory.SharedMemory, n_workers: int, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n_workers = n_workers
        self._grid = np.ndarray((n_workers, _FIELDS), dtype=np.int64, buffer=shm.buf)

    @classmethod
    def create(cls, name: str, n_workers: int) -> "HeartbeatBoard":
        nbytes = max(1, n_workers) * _FIELDS * 8
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        board = cls(shm, n_workers, owner=True)
        board._grid[...] = 0
        return board

    @classmethod
    def attach(cls, name: str, n_workers: int) -> "HeartbeatBoard":
        return cls(shared_memory.SharedMemory(name=name), n_workers, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- worker side ---------------------------------------------------------

    def stamp(self, worker: int, step: int = -1, seq: int = -1) -> None:
        """Record liveness for ``worker`` (negative step/seq = keep old)."""
        row = self._grid[worker]
        if step >= 0:
            row[1] = step
        if seq >= 0:
            row[2] = seq
        # Time last: a reader pairing a fresh time with a stale step only
        # underestimates progress, never liveness.
        row[0] = time.monotonic_ns()

    # -- parent side ---------------------------------------------------------

    def age_s(self, worker: int) -> float | None:
        """Seconds since ``worker`` last stamped (None before any stamp)."""
        stamped = int(self._grid[worker, 0])
        if stamped == 0:
            return None
        return max(0.0, (time.monotonic_ns() - stamped) / 1e9)

    def snapshot(self) -> list[dict[str, float | int | None]]:
        """Per-worker {age_s, step, seq} for failure diagnostics."""
        return [
            {
                "worker": w,
                "age_s": self.age_s(w),
                "step": int(self._grid[w, 1]),
                "seq": int(self._grid[w, 2]),
            }
            for w in range(self.n_workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._grid = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown best effort
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
