"""Fault injection, supervised recovery, durable checkpoints (``repro.resilience``).

The package turns "a worker died" from a run-killing event into a
handled one, and makes the failure modes themselves injectable so the
handling is testable:

* :mod:`~repro.resilience.faults` -- :class:`FaultPlan` /
  :class:`FaultPoint`: deterministic failures (kill/hang/raise/delay/
  torn_write/corrupt/die/slow) at named sites threaded through
  :mod:`repro.exec.mp`, the trainer, checkpointing and serving.
* :mod:`~repro.resilience.errors` -- the typed failure taxonomy
  (:class:`WorkerTimeout`, :class:`WorkerCrash`,
  :class:`CheckpointCorrupt`, ...), all ``RuntimeError`` subclasses.
* :mod:`~repro.resilience.heartbeat` -- shared-memory worker liveness
  stamps, piggybacked on mailbox rounds.
* :mod:`~repro.resilience.ring` -- the retained checkpoint ring with
  CRC-verified loads and automatic fallback past corruption.
* :mod:`~repro.resilience.supervisor` -- the restart loop: catch a
  typed worker failure, respawn, restore from the ring, replay to the
  failure step bit-exactly (lazy import: it pulls in the trainer).

Because every batch is a pure function of ``(seed, batch_index)`` and
checkpoints are bit-exact, recovery here is *lossless by construction*
-- a supervised run's losses and final state are bitwise identical to a
fault-free run's, which ``tests/resilience`` pins.
"""

from repro.resilience.errors import (
    CheckpointCorrupt,
    InjectedFault,
    ResilienceError,
    WorkerCrash,
    WorkerFailure,
    WorkerTimeout,
)
from repro.resilience.faults import FaultPlan, FaultPoint, corrupt_file
from repro.resilience.heartbeat import HeartbeatBoard

__all__ = [
    "CheckpointCorrupt",
    "CheckpointRing",
    "FaultPlan",
    "FaultPoint",
    "HeartbeatBoard",
    "InjectedFault",
    "ResilienceError",
    "RingCheckpoint",
    "Supervisor",
    "SupervisorReport",
    "WorkerCrash",
    "WorkerFailure",
    "WorkerTimeout",
    "corrupt_file",
]

_LAZY = {
    # ring imports train.checkpoint, supervisor imports the trainer;
    # loading either eagerly would cycle through exec.mp's import of
    # the error/heartbeat modules above.
    "CheckpointRing": "repro.resilience.ring",
    "RingCheckpoint": "repro.resilience.ring",
    "Supervisor": "repro.resilience.supervisor",
    "SupervisorReport": "repro.resilience.supervisor",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
