"""Supervised training: catch typed worker failures, respawn, replay.

:class:`Supervisor` wraps the ordinary trainer loop in a restart loop::

    build trainer -> fit
      on WorkerCrash/WorkerTimeout/InjectedFault/... (any RuntimeError):
        record a recovery event (typed diagnostics, wall time)
        close the dead executor (aborts the barrier, reaps workers,
        releases every shared-memory block)
        disarm the fault plan through the failure step
        rebuild, restore from the newest good checkpoint-ring entry
        fit the remaining budget

Recovery is *lossless*: batches are pure functions of
``(seed, batch_index)`` and ring checkpoints are bit-exact, so the
replayed steps recompute the identical losses and the finished run's
weights, optimizer state and loss stream are bitwise equal to an
uninterrupted run's (pinned by ``tests/resilience/test_supervisor``).
Each attempt's completed-step losses are merged by *global* step index,
so the report's loss stream is the fault-free stream even though some
steps ran twice.

Recovery events surface as ``repro.obs`` spans (``resilience.attempt``,
``resilience.recover``) when tracing is on, land in
:attr:`SupervisorReport.events`, and can be exported as JSONL for CI
artifacts (:meth:`SupervisorReport.write_events`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.tracer import trace
from repro.resilience.errors import WorkerFailure
from repro.resilience.faults import FaultPlan
from repro.resilience.ring import CheckpointRing
from repro.train.spec import RunSpec
from repro.train.trainer import DistributedTrainer, Trainer, _spec_faults


@dataclass
class SupervisorReport:
    """What a supervised run did: the merged loss stream, every recovery
    event, and where the final ring checkpoint lives."""

    losses: list[float]
    restarts: int
    events: list[dict[str, Any]] = field(default_factory=list)
    final_step: int = 0
    checkpoint: str | None = None

    def write_events(self, path: str | Path) -> Path:
        """Dump recovery events as JSONL (one event per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
        return path


class Supervisor:
    """Run a spec to completion across worker failures.

    ``backend``/``workers`` override the spec's execution substrate
    (exactly like ``DistributedTrainer.from_spec``); ``max_restarts``
    defaults to the spec's ``resilience.max_restarts``.  The fault plan
    comes from ``spec.resilience.faults`` unless ``faults`` overrides
    it.  Requires ``resilience.ring_every > 0`` for checkpointed
    recovery; without a ring, recovery restarts from step 0 (still
    lossless, just slower).
    """

    def __init__(
        self,
        spec: RunSpec,
        backend: str | None = None,
        workers: int | None = None,
        max_restarts: int | None = None,
        faults: FaultPlan | None = None,
    ):
        self.spec = spec
        self.backend = backend
        self.workers = workers
        res = spec.resilience
        self.max_restarts = (
            max_restarts if max_restarts is not None else res.max_restarts
        )
        self.plan = faults if faults is not None else (_spec_faults(spec) or FaultPlan())
        ring_dir = res.ring_dir or f"checkpoints/{spec.name}-ring"
        self.ring = CheckpointRing(ring_dir, keep=res.ring_keep)
        self.events: list[dict[str, Any]] = []
        #: The final (successful) trainer; stays open so callers can
        #: evaluate/serve from it.  Callers own close().
        self.trainer: Trainer | None = None

    # -- events --------------------------------------------------------------

    def _event(self, kind: str, **data: Any) -> None:
        self.events.append({"event": kind, "time": time.time(), **data})

    # -- building ------------------------------------------------------------

    def _make(self) -> Trainer:
        if self.spec.parallel.ranks > 1:
            return DistributedTrainer.from_spec(
                self.spec,
                backend=self.backend,
                workers=self.workers,
                faults=self.plan,
            )
        return Trainer.from_spec(self.spec, faults=self.plan)

    def _build(self, restart: int) -> Trainer:
        trainer = self._make()
        if restart:
            entry = self.ring.load_latest()
            if entry is not None:
                ckpt, path = entry
                trainer.load_checkpoint(ckpt)
                self._event("restore", restart=restart, step=ckpt.step, path=str(path))
            else:
                self._event("restore", restart=restart, step=0, path=None)
        return trainer

    # -- the restart loop ----------------------------------------------------

    def run(self) -> SupervisorReport:
        """Train the spec's full budget, recovering from failures;
        raises the last failure once ``max_restarts`` is exhausted."""
        losses: dict[int, float] = {}
        restarts = 0
        while True:
            trainer = self._build(restarts)
            start = trainer.step
            try:
                with trace("resilience.attempt", restart=restarts, start=start):
                    trainer.fit()
            except RuntimeError as exc:
                failed_step = trainer.step
                diag = (
                    exc.diagnostics()
                    if isinstance(exc, WorkerFailure)
                    else {"error": type(exc).__name__, "message": str(exc)}
                )
                self._event(
                    "failure", restart=restarts, step=failed_step, **diag
                )
                # Completed steps of this attempt are final: replay will
                # recompute the same bits, so merging by global step is
                # safe (and pinned by test).
                for i, loss in enumerate(trainer.losses):
                    losses[start + i] = loss
                with trace("resilience.recover", restart=restarts, step=failed_step):
                    trainer.close()
                    if restarts >= self.max_restarts:
                        self._event("gave_up", restart=restarts, step=failed_step)
                        raise
                    disarmed = self.plan.disarm_through(failed_step)
                    self._event(
                        "respawn",
                        restart=restarts,
                        step=failed_step,
                        disarmed=disarmed,
                    )
                restarts += 1
                continue
            for i, loss in enumerate(trainer.losses):
                losses[start + i] = loss
            self.trainer = trainer
            break
        entries = self.ring.entries()
        report = SupervisorReport(
            losses=[losses[s] for s in sorted(losses)],
            restarts=restarts,
            events=list(self.events),
            final_step=trainer.step,
            checkpoint=str(entries[-1]) if entries else None,
        )
        return report
