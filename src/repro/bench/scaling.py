"""Drivers for the multi-socket experiments: Figs. 9-15.

Each driver runs :func:`repro.parallel.timing.model_iteration` over a
sweep (rank counts, backends, exchange strategies) and renders the
paper's figure as a table.  All numbers are analytic/virtual-clock
model outputs -- deterministic for a given config, independent of the
host machine.
"""

from __future__ import annotations

from repro.core.config import get_config
from repro.parallel.timing import IterationResult, model_iteration

#: The four variants of Fig. 9/12 in the paper's legend order.
VARIANTS: list[tuple[str, str, str]] = [
    ("ScatterList", "scatterlist", "mpi"),
    ("Fused Scatter", "fused", "mpi"),
    ("Alltoall", "alltoall", "mpi"),
    ("CCL Alltoall", "alltoall", "ccl"),
]

#: Rank sweeps per config (paper x-axes).
STRONG_RANKS = {
    "small": [1, 2, 4, 8],
    "large": [4, 8, 16, 32, 64],
    "mlperf": [1, 2, 4, 8, 16, 26],
}
#: Baseline rank count for speedup/efficiency (Sect. VI-D: optimised
#: 1-socket for small/MLPerf; 4-rank CCL-Alltoall for large).
BASELINE_RANKS = {"small": 1, "large": 4, "mlperf": 1}


def _baseline_time(config: str, platform: str = "cluster", global_n: int | None = None) -> float:
    r0 = BASELINE_RANKS[config]
    base = model_iteration(
        config, r0, platform=platform, backend="ccl", exchange="alltoall",
        global_n=global_n,
    )
    return base.iteration_time


def run_fig9_strong_scaling(configs: tuple[str, ...] = ("small", "large", "mlperf")) -> list[dict[str, object]]:
    """Fig. 9: strong-scaling speed-up and efficiency per variant."""
    rows = []
    for cfg in configs:
        base_t = _baseline_time(cfg)
        r0 = BASELINE_RANKS[cfg]
        for label, exchange, backend in VARIANTS:
            for r in STRONG_RANKS[cfg]:
                if r <= r0:
                    continue
                res = model_iteration(cfg, r, backend=backend, exchange=exchange)
                speedup = base_t / res.iteration_time
                rows.append(
                    {
                        "config": cfg,
                        "variant": label,
                        "ranks": r,
                        "ms_per_iter": res.iteration_time * 1e3,
                        "speedup": speedup,
                        "efficiency": speedup / (r / r0),
                    }
                )
    return rows


def run_fig10_compute_comm(
    config: str = "large", ranks: list[int] | None = None
) -> list[dict[str, object]]:
    """Fig. 10: compute/communication split, overlapping vs blocking,
    MPI vs CCL backend (strong scaling)."""
    ranks = ranks if ranks is not None else STRONG_RANKS[config][:5]
    rows = []
    for blocking in (False, True):
        for backend in ("mpi", "ccl"):
            for r in ranks:
                res = model_iteration(config, r, backend=backend, blocking=blocking)
                rows.append(
                    {
                        "config": config,
                        "mode": "blocking" if blocking else "overlapping",
                        "backend": backend,
                        "ranks": r,
                        "compute_ms": res.compute_time * 1e3,
                        "comm_ms": res.comm_time * 1e3,
                        "total_ms": res.iteration_time * 1e3,
                    }
                )
    return rows


def run_fig11_comm_breakdown(
    config: str = "large", ranks: list[int] | None = None
) -> list[dict[str, object]]:
    """Fig. 11: communication cost split into Framework vs Wait, per
    collective, overlapping vs blocking, per backend (strong scaling)."""
    ranks = ranks if ranks is not None else STRONG_RANKS[config][:5]
    rows = []
    for blocking in (False, True):
        for backend in ("mpi", "ccl"):
            for r in ranks:
                res = model_iteration(config, r, backend=backend, blocking=blocking)
                bd = res.comm_breakdown()
                rows.append(
                    {
                        "config": config,
                        "mode": "blocking" if blocking else "overlapping",
                        "backend": backend,
                        "ranks": r,
                        "alltoall_framework_ms": bd["Alltoall-Framework"] * 1e3,
                        "allreduce_framework_ms": bd["Allreduce-Framework"] * 1e3,
                        "alltoall_wait_ms": bd["Alltoall-Wait"] * 1e3,
                        "allreduce_wait_ms": bd["Allreduce-Wait"] * 1e3,
                    }
                )
    return rows


def _weak_result(config: str, r: int, **kw) -> IterationResult:
    cfg = get_config(config)
    return model_iteration(config, r, global_n=cfg.local_minibatch * r, **kw)


def run_fig12_weak_scaling(configs: tuple[str, ...] = ("small", "large", "mlperf")) -> list[dict[str, object]]:
    """Fig. 12: weak-scaling speed-up (throughput) and efficiency."""
    rows = []
    for cfg_name in configs:
        cfg = get_config(cfg_name)
        r0 = BASELINE_RANKS[cfg_name]
        base = _weak_result(cfg_name, r0, backend="ccl", exchange="alltoall")
        base_throughput = cfg.local_minibatch * r0 / base.iteration_time
        for label, exchange, backend in VARIANTS:
            for r in STRONG_RANKS[cfg_name]:
                if r <= r0:
                    continue
                res = _weak_result(cfg_name, r, backend=backend, exchange=exchange)
                throughput = cfg.local_minibatch * r / res.iteration_time
                speedup = throughput / base_throughput * r0
                rows.append(
                    {
                        "config": cfg_name,
                        "variant": label,
                        "ranks": r,
                        "ms_per_iter": res.iteration_time * 1e3,
                        "speedup": speedup,
                        "efficiency": speedup / r,
                    }
                )
    return rows


def run_fig13_compute_comm_weak(
    config: str = "mlperf", ranks: list[int] | None = None
) -> list[dict[str, object]]:
    """Fig. 13: compute/comm split under weak scaling -- including the
    data-loader-driven compute growth on the MLPerf config."""
    ranks = ranks if ranks is not None else STRONG_RANKS[config]
    rows = []
    for blocking in (False, True):
        for backend in ("mpi", "ccl"):
            for r in ranks:
                res = _weak_result(config, r, backend=backend, blocking=blocking)
                loader = res.merged().get("data.loader")
                rows.append(
                    {
                        "config": config,
                        "mode": "blocking" if blocking else "overlapping",
                        "backend": backend,
                        "ranks": r,
                        "compute_ms": res.compute_time * 1e3,
                        "comm_ms": res.comm_time * 1e3,
                        "loader_ms": loader * 1e3,
                    }
                )
    return rows


def run_fig14_comm_breakdown_weak(
    config: str = "mlperf", ranks: list[int] | None = None
) -> list[dict[str, object]]:
    """Fig. 14: communication breakdown under weak scaling."""
    ranks = ranks if ranks is not None else STRONG_RANKS[config]
    rows = []
    for blocking in (False, True):
        for backend in ("mpi", "ccl"):
            for r in ranks:
                res = _weak_result(config, r, backend=backend, blocking=blocking)
                bd = res.comm_breakdown()
                rows.append(
                    {
                        "config": config,
                        "mode": "blocking" if blocking else "overlapping",
                        "backend": backend,
                        "ranks": r,
                        "alltoall_framework_ms": bd["Alltoall-Framework"] * 1e3,
                        "allreduce_framework_ms": bd["Allreduce-Framework"] * 1e3,
                        "alltoall_wait_ms": bd["Alltoall-Wait"] * 1e3,
                        "allreduce_wait_ms": bd["Allreduce-Wait"] * 1e3,
                    }
                )
    return rows


def run_fig15_8socket(configs: tuple[str, ...] = ("small", "mlperf")) -> list[dict[str, object]]:
    """Fig. 15: strong scaling on the 8-socket shared-memory node.

    The large config is omitted by default: it only fits from 4 sockets
    up even on this node (Table II), and the UPI-node behaviour of
    interest (flat alltoall from 4 to 8 sockets) shows on the others.
    """
    rows = []
    for cfg in configs:
        for r in (1, 2, 4, 8):
            res = model_iteration(
                cfg, r, platform="node",
                backend="ccl" if r > 1 else "local",
                blocking=True,
            )
            bd = res.comm_breakdown()
            rows.append(
                {
                    "config": cfg,
                    "ranks": r,
                    "compute_ms": res.compute_time * 1e3,
                    "allreduce_ms": (bd["Allreduce-Wait"] + bd["Allreduce-Framework"]) * 1e3,
                    "alltoall_ms": (bd["Alltoall-Wait"] + bd["Alltoall-Framework"]) * 1e3,
                    "total_ms": res.iteration_time * 1e3,
                }
            )
    return rows
