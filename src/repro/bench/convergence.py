"""Driver for Fig. 16: BF16 Split-SGD convergence vs FP32 vs FP24.

The paper trains the MLPerf configuration for one epoch of the Criteo
Terabyte dataset (~4B samples) and evaluates ROC AUC at every 5% of the
epoch, showing

* BF16 Split-SGD matching FP32 to < 0.001 AUC, and
* the FP24 (1-8-15, i.e. only 8 extra LSBs) variant falling measurably
  short.

At reproduction scale we train an MLPerf-*shaped* DLRM (26 tables with
capped cardinalities, same interaction and MLP structure) on the
synthetic Criteo generator, with the same 5%-grid evaluation.  The claim
being reproduced is the *relationship between the three curves*, not the
absolute 0.80 AUC of the real dataset (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.bench import paper
from repro.core.config import MLPERF, DLRMConfig
from repro.core.model import DLRM
from repro.core.optim import SGD, SplitSGD
from repro.data.criteo import SyntheticCriteoDataset
from repro.train.callbacks import MetricLogger, PeriodicEval
from repro.train.trainer import Trainer


def scaled_mlperf(rows_cap: int = 2000, embedding_dim: int = 16) -> DLRMConfig:
    """An MLPerf-shaped config small enough to train in a benchmark."""
    return dataclasses.replace(
        MLPERF,
        name="mlperf-fig16",
        minibatch=128,
        global_minibatch=512,
        local_minibatch=128,
        embedding_dim=embedding_dim,
        table_rows=tuple(min(m, rows_cap) for m in MLPERF.table_rows),
        bottom_mlp=(64, 32, embedding_dim),
        top_mlp=(64, 32, 1),
    )


@dataclass
class ConvergenceCurves:
    """AUC-vs-epoch-fraction for the precision variants.

    ``bf16_nosplit`` (BF16 weights with *no* low half at all) is an extra
    ablation beyond the paper's three curves: it exposes, at reproduction
    scale, the lost-small-updates mechanism that makes the paper's FP24
    curve fall short at full Criteo scale (see EXPERIMENTS.md).
    """

    fractions: list[float]
    fp32: list[float] = field(default_factory=list)
    bf16_split: list[float] = field(default_factory=list)
    fp24: list[float] = field(default_factory=list)
    bf16_nosplit: list[float] = field(default_factory=list)

    def final_gap_bf16(self) -> float:
        """|AUC(bf16) - AUC(fp32)| at end of epoch."""
        return abs(self.bf16_split[-1] - self.fp32[-1])

    def mean_gap_fp24(self) -> float:
        """Mean AUC deficit of the FP24 variant vs FP32 over the epoch."""
        return float(np.mean(np.array(self.fp32) - np.array(self.fp24)))

    def mean_gap_nosplit(self) -> float:
        """Mean AUC deficit of plain-BF16 weights vs FP32."""
        return float(np.mean(np.array(self.fp32) - np.array(self.bf16_nosplit)))

    def rows(self) -> list[dict[str, object]]:
        out = []
        for i, f in enumerate(self.fractions):
            out.append(
                {
                    "epoch_pct": round(100 * f),
                    "fp32_auc": self.fp32[i],
                    "bf16_split_auc": self.bf16_split[i],
                    "fp24_auc": self.fp24[i],
                    "bf16_nosplit_auc": self.bf16_nosplit[i],
                    "paper_fp32": paper.FIG16_FP32_AUC[
                        min(i, len(paper.FIG16_FP32_AUC) - 1)
                    ],
                    "paper_bf16": paper.FIG16_BF16_AUC[
                        min(i, len(paper.FIG16_BF16_AUC) - 1)
                    ],
                    "paper_fp24": paper.FIG16_FP24_AUC[
                        min(i, len(paper.FIG16_FP24_AUC) - 1)
                    ],
                }
            )
        return out


def _train_variant(
    cfg: DLRMConfig,
    dataset: SyntheticCriteoDataset,
    variant: str,
    epoch_batches: int,
    eval_points: int,
    test_batch,
    lr: float,
    seed: int,
) -> list[float]:
    """One precision variant through the Trainer: the 5%-grid AUC curve.

    The bespoke loop this replaces is now a :class:`PeriodicEval` firing
    every ``epoch_batches / eval_points`` steps; the trainer's held-out
    eval batch is exactly the ``test_batch`` the caller built (same
    size, same far-future dataset index), so the curves are unchanged.
    """
    if variant == "fp32":
        model = DLRM(cfg, seed=seed)
        opt: SGD = SGD(lr=lr)
    elif variant == "bf16_split":
        model = DLRM(cfg, seed=seed, storage="split_bf16")
        opt = SplitSGD(lr=lr, lo_bits=16)
    elif variant == "fp24":
        model = DLRM(cfg, seed=seed, storage="split_bf16", lo_bits=8)
        opt = SplitSGD(lr=lr, lo_bits=8)
    elif variant == "bf16_nosplit":
        model = DLRM(cfg, seed=seed, storage="split_bf16", lo_bits=0)
        opt = SplitSGD(lr=lr, lo_bits=0)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    opt.register(model.parameters())
    logger = MetricLogger()
    trainer = Trainer(
        model,
        opt,
        dataset,
        batch_size=cfg.minibatch,
        callbacks=[PeriodicEval(every=epoch_batches // eval_points), logger],
        eval_size=test_batch.size,
        eval_index=10_000_000,
    )
    trainer.fit(epoch_batches)
    return [row["auc"] for row in logger.eval_history]


def run_fig16_convergence(
    epoch_batches: int = 100,
    eval_points: int = 20,
    rows_cap: int = 2000,
    lr: float = 0.1,
    seed: int = 0,
    test_size: int = 4096,
) -> ConvergenceCurves:
    """Train the three precision variants and collect their AUC curves.

    All three see identical data and identical initial weights (modulo
    storage format), mirroring the paper's controlled comparison.
    """
    if epoch_batches % eval_points:
        raise ValueError("epoch_batches must be divisible by eval_points")
    cfg = scaled_mlperf(rows_cap=rows_cap)
    dataset = SyntheticCriteoDataset(cfg, seed=seed)
    test_batch = dataset.batch(test_size, batch_index=10_000_000)
    curves = ConvergenceCurves(
        fractions=[(k + 1) / eval_points for k in range(eval_points)]
    )
    curves.fp32 = _train_variant(
        cfg, dataset, "fp32", epoch_batches, eval_points, test_batch, lr, seed
    )
    curves.bf16_split = _train_variant(
        cfg, dataset, "bf16_split", epoch_batches, eval_points, test_batch, lr, seed
    )
    curves.fp24 = _train_variant(
        cfg, dataset, "fp24", epoch_batches, eval_points, test_batch, lr, seed
    )
    curves.bf16_nosplit = _train_variant(
        cfg, dataset, "bf16_nosplit", epoch_batches, eval_points, test_batch, lr, seed
    )
    return curves
