"""Experiment drivers regenerating every table and figure of the paper.

One driver per experiment; each returns structured rows carrying both the
model-produced numbers and (where the paper prints them) the paper's
reported values, so the benchmark harness can render side-by-side tables
and assert *shape* properties (orderings, ratios, crossovers).
"""

from repro.bench import paper
from repro.bench.singlesocket import (
    run_table1,
    run_table2,
    run_fig5_mlp_kernels,
    run_fig6_overlap,
    run_fig7_single_socket,
    run_fig8_breakdown,
)
from repro.bench.scaling import (
    run_fig9_strong_scaling,
    run_fig10_compute_comm,
    run_fig11_comm_breakdown,
    run_fig12_weak_scaling,
    run_fig13_compute_comm_weak,
    run_fig14_comm_breakdown_weak,
    run_fig15_8socket,
)
from repro.bench.convergence import run_fig16_convergence

__all__ = [
    "paper",
    "run_table1",
    "run_table2",
    "run_fig5_mlp_kernels",
    "run_fig6_overlap",
    "run_fig7_single_socket",
    "run_fig8_breakdown",
    "run_fig9_strong_scaling",
    "run_fig10_compute_comm",
    "run_fig11_comm_breakdown",
    "run_fig12_weak_scaling",
    "run_fig13_compute_comm_weak",
    "run_fig14_comm_breakdown_weak",
    "run_fig15_8socket",
    "run_fig16_convergence",
]
