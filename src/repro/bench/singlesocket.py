"""Drivers for the single-socket experiments: Tables I/II, Figs. 5-8."""

from __future__ import annotations

import numpy as np

from repro.bench import paper
from repro.core.config import table_one, table_two
from repro.hw.costmodel import CostModel, GemmShape
from repro.hw.spec import SKX_8180
from repro.parallel.overlap import OverlapReport, overlap_mlp_training
from repro.parallel.timing import IterationResult, single_socket_iteration

#: The (update strategy, GEMM impl) pairs of Fig. 7's four bars.
FIG7_VARIANTS = [
    ("reference", "pytorch_mkl"),
    ("atomic", "this_work"),
    ("rtm", "this_work"),
    ("racefree", "this_work"),
]


def run_table1() -> list[dict[str, object]]:
    """Paper Table I: the three DLRM model specifications."""
    return table_one()


def run_table2() -> list[dict[str, object]]:
    """Paper Table II: distributed-run characteristics, with the paper's
    reported values alongside the Eq. 1/2 computations."""
    rows = []
    for row in table_two():
        ref = paper.TABLE2[row["config"]]
        row = dict(row)
        row["paper_allreduce_mb"] = ref["allreduce_mb"]
        row["paper_alltoall_mb"] = ref["alltoall_mb"]
        row["paper_min_sockets"] = ref["min_sockets"]
        rows.append(row)
    return rows


def run_fig5_mlp_kernels(
    minibatch: int = 1024,
    feature_dims: tuple[int, ...] = (1024, 2048, 4096),
) -> list[dict[str, object]]:
    """Fig. 5: single-socket MLP training-kernel performance.

    For every (C=K, pass, implementation) the driver reports the modelled
    GFLOPS and fraction-of-peak on the SKX 8180 socket; the paper's
    averages (72% / 75% / 61%) ride along for comparison.
    """
    cm = CostModel(SKX_8180)
    rows = []
    for ck in feature_dims:
        for pass_, shape in (
            ("fwd", GemmShape(minibatch, ck, ck)),
            ("bwd_d", GemmShape(minibatch, ck, ck)),
            ("bwd_w", GemmShape(ck, ck, minibatch)),
        ):
            for impl in ("this_work", "fb_mlp", "pytorch_mkl"):
                t = cm.gemm_time(shape, impl=impl, pass_=pass_)
                gflops = shape.flops / t / 1e9
                rows.append(
                    {
                        "C=K": ck,
                        "pass": pass_,
                        "impl": impl,
                        "model_gflops": gflops,
                        "model_frac_peak": gflops * 1e9 / SKX_8180.peak_flops,
                        "paper_avg_frac_peak": paper.FIG5_AVG_EFFICIENCY[impl],
                    }
                )
    return rows


def fig5_average_efficiency(rows: list[dict[str, object]]) -> dict[str, float]:
    """Average fraction-of-peak per implementation over all Fig. 5 bars."""
    out: dict[str, list[float]] = {}
    for r in rows:
        out.setdefault(str(r["impl"]), []).append(float(r["model_frac_peak"]))
    return {impl: float(np.mean(v)) for impl, v in out.items()}


def run_fig6_overlap() -> tuple[OverlapReport, list[dict[str, object]]]:
    """Fig. 6 / Fig. 2: overlapping the SGD collectives with the backward
    GEMMs (8 CLX nodes, 4 endpoints, N=1008, C=K=1024)."""
    report = overlap_mlp_training()
    rows = [
        {
            "pass": "BWD (bwd-by-data + allgather)",
            "model_gemm_ms": report.bwd_gemm_time * 1e3,
            "model_comm_ms": report.bwd_comm_time * 1e3,
            "paper_gemm_ms": paper.FIG6_MS["bwd_d_gemm"],
            "paper_comm_ms": paper.FIG6_MS["bwd_comm"],
            "hidden": report.bwd_comm_time <= report.bwd_gemm_time,
        },
        {
            "pass": "UPD (bwd-by-weights + reduce-scatter)",
            "model_gemm_ms": report.upd_gemm_time * 1e3,
            "model_comm_ms": report.upd_comm_time * 1e3,
            "paper_gemm_ms": paper.FIG6_MS["bwd_w_gemm"],
            "paper_comm_ms": paper.FIG6_MS["upd_comm"],
            "hidden": report.upd_comm_time <= report.upd_gemm_time,
        },
    ]
    return report, rows


def run_fig7_single_socket() -> list[dict[str, object]]:
    """Fig. 7: single-socket DLRM ms/iteration, 4 variants x 2 configs.

    (The large config does not fit in one socket -- Sect. VI-C -- so, as
    in the paper, it is absent here.)
    """
    rows = []
    for cfg in ("small", "mlperf"):
        for update, impl in FIG7_VARIANTS:
            res = single_socket_iteration(cfg, update=update, gemm_impl=impl)
            rows.append(
                {
                    "config": cfg,
                    "strategy": update,
                    "model_ms": res.iteration_time * 1e3,
                    "paper_ms": paper.FIG7_MS[(cfg, update)],
                }
            )
    return rows


def fig7_speedups(rows: list[dict[str, object]]) -> dict[str, float]:
    """Reference / race-free ratio per config (the 110x / 8x headline)."""
    by = {(r["config"], r["strategy"]): float(r["model_ms"]) for r in rows}
    return {
        cfg: by[(cfg, "reference")] / by[(cfg, "racefree")]
        for cfg in ("small", "mlperf")
    }


def _breakdown(res: IterationResult) -> dict[str, float]:
    m = res.merged()
    emb = m.total("compute.embedding") + m.total("update.sparse")
    mlp = m.total("compute.mlp") + m.total("update.dense")
    rest = max(0.0, res.iteration_time - emb - mlp)
    return {"embeddings": emb, "mlp": mlp, "rest": rest}


def run_fig8_breakdown() -> list[dict[str, object]]:
    """Fig. 8: time split across Embeddings / MLP / Rest per variant."""
    rows = []
    for cfg in ("small", "mlperf"):
        for update, impl in FIG7_VARIANTS:
            res = single_socket_iteration(cfg, update=update, gemm_impl=impl)
            b = _breakdown(res)
            total = res.iteration_time
            rows.append(
                {
                    "config": cfg,
                    "strategy": update,
                    "total_ms": total * 1e3,
                    "embeddings_ms": b["embeddings"] * 1e3,
                    "mlp_ms": b["mlp"] * 1e3,
                    "rest_ms": b["rest"] * 1e3,
                    "embeddings_pct": 100 * b["embeddings"] / total,
                    "paper_embeddings_ms": paper.FIG8_EMBEDDING_MS[(cfg, update)],
                }
            )
    return rows
