"""Values the paper prints, used as side-by-side references in benches.

Sources are given per constant; everything here is *reported*, never
computed -- the drivers put these next to the model's outputs.
"""

# --- Fig. 7: single-socket DLRM time per iteration (ms) --------------------
FIG7_MS = {
    ("small", "reference"): 4288.0,
    ("small", "atomic"): 40.4,
    ("small", "rtm"): 38.3,
    ("small", "racefree"): 38.9,
    ("mlperf", "reference"): 272.0,
    ("mlperf", "atomic"): 106.3,
    ("mlperf", "rtm"): 96.8,
    ("mlperf", "racefree"): 34.8,
}

# --- Fig. 8: embedding time within the iteration (ms, bar labels) -----------
FIG8_EMBEDDING_MS = {
    ("small", "reference"): 4257.0,
    ("small", "atomic"): 14.4,
    ("small", "rtm"): 12.7,
    ("small", "racefree"): 13.3,
    ("mlperf", "reference"): 190.0,
    ("mlperf", "atomic"): 75.7,
    ("mlperf", "rtm"): 68.2,
    ("mlperf", "racefree"): 5.9,
}

# --- Fig. 5: average GEMM efficiency (fraction of peak, Sect. VI-A) ---------
FIG5_AVG_EFFICIENCY = {
    "this_work": 0.72,
    "fb_mlp": 0.75,
    "pytorch_mkl": 0.61,
}

# --- Fig. 6 / Sect. VI-B: standalone MLP overlap (ms) -----------------------
FIG6_MS = {
    "bwd_d_gemm": 5.40,
    "bwd_w_gemm": 5.39,
    "bwd_comm": 2.84,
    "upd_comm": 1.86,
}

# --- Table II ---------------------------------------------------------------
TABLE2 = {
    "small": {"capacity_gb": 2, "min_sockets": 1, "max_ranks": 8,
              "allreduce_mb": 9.5, "alltoall_mb": 15.8},
    "large": {"capacity_gb": 384, "min_sockets": 4, "max_ranks": 64,
              "allreduce_mb": 1047.0, "alltoall_mb": 1024.0},
    "mlperf": {"capacity_gb": 98, "min_sockets": 1, "max_ranks": 26,
               "allreduce_mb": 9.0, "alltoall_mb": 208.0},
}

# --- Fig. 9 / Sect. VI-D1: strong-scaling headline numbers ------------------
#: Max speedup and efficiency at max ranks (CCL-Alltoall variant).
FIG9_HEADLINES = {
    # config: (ranks, speedup, efficiency, baseline_ranks)
    "small": (8, 5.5, 0.69, 1),      # "5x-6x ... ~60%-71% efficiency"
    "large": (32, 5.5, 0.69, 4),     # 8x sockets -> 5x-6x
    "mlperf": (26, 8.5, 0.33, 1),    # "8.5x ... 33% efficiency"
}

# --- Fig. 12 / Sect. VI-D2: weak-scaling headline numbers -------------------
FIG12_HEADLINES = {
    "small": (8, 6.4, 0.80, 1),
    "large": (64, 13.5, 0.84, 4),
    "mlperf": (26, 17.0, 0.65, 1),
}

# --- Sect. VI-C: GPU comparison ----------------------------------------------
V100_SMALL_MS = 62.0
V100_OPTIMIZED_PROJECTION_MS = (10.0, 15.0)

# --- Fig. 16: ROC AUC at epoch fractions (FP32 reference curve) -------------
FIG16_FRACTIONS = [0.05 * k for k in range(1, 21)]
FIG16_FP32_AUC = [
    0.7874, 0.7925, 0.7945, 0.7951, 0.7962, 0.7983, 0.7994, 0.7995,
    0.8002, 0.8001, 0.8001, 0.8010, 0.8015, 0.8016, 0.8012, 0.8011,
    0.8013, 0.8025, 0.8026, 0.8027,
]
FIG16_BF16_AUC = [
    0.7874, 0.7927, 0.7946, 0.7951, 0.7964, 0.7984, 0.7995, 0.7997,
    0.8004, 0.8003, 0.8003, 0.8011, 0.8016, 0.8017, 0.8014, 0.8010,
    0.8013, 0.8026, 0.8026, 0.8027,
]
FIG16_FP24_AUC = [
    0.7831, 0.7869, 0.7882, 0.7892, 0.7895, 0.7914, 0.7932, 0.7926,
    0.7923, 0.7917, 0.7935, 0.7936, 0.7942, 0.7942, 0.7932, 0.7934,
    0.7934, 0.7954, 0.7943, 0.7947,
]
