"""repro.obs: wall-clock tracing spans, aggregation and export.

The virtual-clock :class:`~repro.perf.profiler.Profiler` answers "what
*would* this cost at paper scale"; this package answers "where did the
wall-clock time of *this run on this machine* actually go".  A process
(or worker process) installs one :class:`Tracer`; instrumented code
paths open nested spans through :func:`trace`, which record into
per-thread ring buffers (the hot path is a clock read and an index
bump, and with tracing disabled the whole call collapses to one global
load and a no-op context manager).  Drained spans merge across threads
and worker processes into a single rank-attributed timeline which
exports as structured JSONL, as a Chrome ``trace_event`` file viewable
in Perfetto, or as the per-stage aggregate table the Trainer/serve/CLI
summaries print.

All exported events carry :data:`TELEMETRY_SCHEMA`; consumers
(``repro trace``, ``benchmarks/compare_bench.py``) refuse mismatched
versions instead of misreading them.
"""

from repro.obs.aggregate import (
    aggregate,
    merge_spans,
    stage_breakdown,
    stage_table,
)
from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import (
    TELEMETRY_SCHEMA,
    Tracer,
    enabled,
    get_tracer,
    set_tracer,
    trace,
)

__all__ = [
    "TELEMETRY_SCHEMA",
    "Tracer",
    "aggregate",
    "chrome_trace_events",
    "enabled",
    "get_tracer",
    "merge_spans",
    "read_jsonl",
    "set_tracer",
    "stage_breakdown",
    "stage_table",
    "trace",
    "write_chrome_trace",
    "write_jsonl",
]
