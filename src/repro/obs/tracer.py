"""The span recorder: per-thread ring buffers behind one global switch.

Design constraints, in order:

1. **Disabled cost ~ zero.**  Instrumented hot paths call
   :func:`trace` unconditionally; when no tracer is installed that is
   one module-global load, one comparison and a shared no-op context
   manager -- no allocation besides the kwargs dict the call site built.
   ``benchmarks/bench_obs_overhead.py`` asserts the end-to-end step
   overhead stays under 1%.
2. **Enabled cost = a clock read and an index bump.**  A finished span
   is one tuple written into a fixed-size per-thread ring
   (``buf[count % capacity]``); no locks on the hot path (each thread
   owns its ring), no growth, no I/O.  When a ring wraps, the oldest
   spans are dropped and counted, never silently lost.
3. **Bit-identity neutral.**  Spans only *observe* existing calls --
   they never reorder work, touch arrays, or consume RNG state, so a
   traced run's losses/checkpoints/virtual clocks are bitwise the
   untraced run's (pinned by ``tests/obs/test_bit_identity.py``).

Timestamps are ``time.perf_counter_ns()``: CLOCK_MONOTONIC on Linux,
whose epoch is machine-wide, so spans drained from the worker processes
of :mod:`repro.exec.mp` merge with the parent's on one comparable axis.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

#: Version of every exported telemetry payload (JSONL header, Chrome
#: trace metadata, the bench JSON's per-stage breakdown).  Bump on any
#: change to span fields or aggregate layout; consumers fail loudly on
#: a mismatch instead of misreading old files.
TELEMETRY_SCHEMA = 1

#: Default per-thread ring capacity (spans); override per Tracer.
DEFAULT_CAPACITY = 16384


class _NullSpan:
    """The shared disabled-path context manager (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add(self, **counters: float) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Ring:
    """One thread's fixed-capacity span buffer."""

    __slots__ = ("buf", "cap", "count")

    def __init__(self, cap: int):
        self.buf: list = [None] * cap
        self.cap = cap
        self.count = 0

    def records(self) -> list:
        """Surviving records, oldest first."""
        if self.count <= self.cap:
            return self.buf[: self.count]
        head = self.count % self.cap
        return self.buf[head:] + self.buf[:head]

    @property
    def dropped(self) -> int:
        return max(0, self.count - self.cap)


class _ThreadState(threading.local):
    """Per-thread recording state: the ring plus the live nesting depth."""

    def __init__(self) -> None:
        self.ring: _Ring | None = None
        self.depth = 0
        self.tid = 0


class _Span:
    """A live span; records itself on ``__exit__``."""

    __slots__ = ("_state", "_t0", "name", "counters")

    def __init__(self, state: _ThreadState, name: str, counters: dict | None):
        self._state = state
        self.name = name
        self.counters = counters

    def add(self, **counters: float) -> "_Span":
        """Attach/merge counters discovered mid-span (cache hits, ...)."""
        if self.counters is None:
            self.counters = counters
        else:
            self.counters.update(counters)
        return self

    def __enter__(self) -> "_Span":
        self._state.depth += 1
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        t0 = self._t0
        dur = time.perf_counter_ns() - t0
        state = self._state
        state.depth -= 1
        ring = state.ring
        assert ring is not None
        ring.buf[ring.count % ring.cap] = (
            self.name, t0, dur, state.depth, state.tid, self.counters,
        )
        ring.count += 1
        return False


class Tracer:
    """Records spans from any thread of one process.

    ``proc`` labels the drained spans (and the Perfetto process lane):
    ``"main"`` for the driving process, ``"worker<i>:ranks<lo>-<hi>"``
    for a process-rank worker.  ``drain`` is destructive (rings reset);
    ``snapshot`` is not.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, proc: str = "main"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.proc = proc
        self._state = _ThreadState()
        self._rings: dict[int, _Ring] = {}
        self._lock = threading.Lock()
        self._tid_seq = 0

    # -- recording ----------------------------------------------------------

    def _thread_state(self) -> _ThreadState:
        state = self._state
        if state.ring is None:
            ring = _Ring(self.capacity)
            with self._lock:
                self._tid_seq += 1
                state.tid = self._tid_seq
                self._rings[threading.get_ident()] = ring
            state.ring = ring
        return state

    def span(self, name: str, counters: dict | None = None) -> _Span:
        """A context manager timing one named, possibly nested, region."""
        return _Span(self._thread_state(), name, counters)

    # -- introspection ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans lost to ring wraparound since the last drain."""
        with self._lock:
            return sum(r.dropped for r in self._rings.values())

    def _collect(self, reset: bool) -> list[dict[str, Any]]:
        pid = os.getpid()
        with self._lock:
            rings = list(self._rings.values())
        spans: list[dict[str, Any]] = []
        for ring in rings:
            for name, t0, dur, depth, tid, counters in ring.records():
                rec: dict[str, Any] = {
                    "name": name,
                    "ts": t0,
                    "dur": dur,
                    "depth": depth,
                    "tid": tid,
                    "pid": pid,
                    "proc": self.proc,
                }
                if counters:
                    rec["args"] = dict(counters)
                spans.append(rec)
            if reset:
                ring.count = 0
        spans.sort(key=lambda s: (s["ts"], s["depth"]))
        return spans

    def snapshot(self) -> list[dict[str, Any]]:
        """Recorded spans so far, sorted by start time (non-destructive)."""
        return self._collect(reset=False)

    def drain(self) -> list[dict[str, Any]]:
        """Recorded spans, sorted by start time; resets every ring."""
        return self._collect(reset=True)


# -- the global switch ---------------------------------------------------------

_TRACER: Tracer | None = None


def set_tracer(tracer: Tracer | None) -> None:
    """Install (or with ``None`` remove) the process-wide tracer."""
    global _TRACER
    _TRACER = tracer


def get_tracer() -> Tracer | None:
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def trace(name: str, **counters: float):
    """Open a span named ``name`` on the installed tracer.

    The instrumentation entry point: cheap enough to leave in every hot
    path.  With no tracer installed it returns a shared no-op context
    manager.  Counters are numeric annotations (rows, bytes, hits ...)
    carried into the exported event's ``args``.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, counters or None)


def drain_current() -> list[dict[str, Any]]:
    """Drain the installed tracer (empty list when tracing is off)."""
    tracer = _TRACER
    return tracer.drain() if tracer is not None else []
