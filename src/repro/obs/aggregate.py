"""Per-stage aggregation of drained spans.

A "stage" is a span name: the instrumentation vocabulary is small and
fixed (``data.synthesis``, ``embedding.gather``, ``mlp.gemm.*``,
``comm.<coll>.{framework,wait}``, ``update.*``, ``phase.*``,
``serve.*``, ``train.step``), so aggregating by name *is* the per-stage
breakdown.  Shares are fractions of total ``train.step`` time (the
outermost training span) when present, else of the timeline's wall
extent -- nested stages can therefore sum past 1.0 by design (a GEMM
inside a rank phase counts in both), which is exactly how the paper's
stacked breakdowns read too.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.tracer import TELEMETRY_SCHEMA

#: The denominator stage for shares (the whole-step span).
STEP_STAGE = "train.step"


def merge_spans(*span_lists: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """One timeline from several drains (parent + worker processes),
    ordered by start time with outer spans before their children."""
    merged = [s for spans in span_lists for s in spans]
    merged.sort(key=lambda s: (s["ts"], s["depth"]))
    return merged


def _wall_extent_ns(spans: list[dict[str, Any]]) -> int:
    if not spans:
        return 0
    t0 = min(s["ts"] for s in spans)
    t1 = max(s["ts"] + s["dur"] for s in spans)
    return t1 - t0


def aggregate(spans: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-stage totals: ``{name: {count, total_ms, mean_ms, share,
    counters}}``, sorted by descending total time.

    ``share`` divides by the summed ``train.step`` time when any such
    span exists (so worker-process stages attribute against the parent's
    step loop correctly after a merge), else by the wall extent of the
    timeline.  Counters with the same key sum across spans.
    """
    spans = list(spans)
    stats: dict[str, dict[str, Any]] = {}
    for s in spans:
        st = stats.get(s["name"])
        if st is None:
            st = stats[s["name"]] = {"count": 0, "total_ns": 0, "counters": {}}
        st["count"] += 1
        st["total_ns"] += s["dur"]
        for key, value in s.get("args", {}).items():
            st["counters"][key] = st["counters"].get(key, 0) + value
    step_ns = stats.get(STEP_STAGE, {}).get("total_ns", 0)
    denom = step_ns if step_ns > 0 else _wall_extent_ns(spans)
    out: dict[str, dict[str, Any]] = {}
    for name in sorted(stats, key=lambda n: -stats[n]["total_ns"]):
        st = stats[name]
        out[name] = {
            "count": st["count"],
            "total_ms": st["total_ns"] / 1e6,
            "mean_ms": st["total_ns"] / st["count"] / 1e6,
            "share": st["total_ns"] / denom if denom else 0.0,
            "counters": st["counters"],
        }
    return out


def _exposed_ms(st: dict[str, Any]) -> float:
    """Exposed (non-overlapped) virtual communication time of one stage.

    ``comm.*.wait`` spans carry an ``exposed_virtual_s`` counter -- the
    simulated time the rank actually stalled, as opposed to transfer
    time hidden under compute.  Summed here into a per-stage column so a
    trace answers the paper's headline question ("how much communication
    did the overlap hide?") without replaying the run.
    """
    return st["counters"].get("exposed_virtual_s", 0.0) * 1e3


def stage_table(spans: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Rows for :func:`repro.perf.report.format_table`."""
    rows = []
    for name, st in aggregate(spans).items():
        rows.append(
            {
                "stage": name,
                "count": st["count"],
                "total_ms": st["total_ms"],
                "mean_ms": st["mean_ms"],
                "share": st["share"],
                "exposed_ms": _exposed_ms(st),
            }
        )
    return rows


def stage_breakdown(spans: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """The versioned per-stage section embedded in bench JSON payloads
    (``BENCH_train_e2e.json``) and gated by ``compare_bench.py``."""
    stages = {}
    for name, st in aggregate(spans).items():
        entry = {
            "count": st["count"],
            "total_ms": round(st["total_ms"], 3),
            "share": round(st["share"], 4),
        }
        exposed = _exposed_ms(st)
        if exposed:
            entry["exposed_ms"] = round(exposed, 3)
        stages[name] = entry
    return {"telemetry_schema": TELEMETRY_SCHEMA, "stages": stages}
