"""Exporters: structured JSONL events and Chrome ``trace_event`` files.

Both formats carry :data:`~repro.obs.tracer.TELEMETRY_SCHEMA`:

* **JSONL** -- line 1 is a header record (``{"type": "header",
  "telemetry_schema": N, ...}``), every following line is one span
  exactly as drained (``name``/``ts``/``dur`` in ns/``depth``/``tid``/
  ``pid``/``proc``/optional ``args``).  This is the lossless archival
  format ``repro trace`` reads back.
* **Chrome trace** -- the ``trace_event`` JSON Perfetto and
  ``chrome://tracing`` open directly: one complete ("ph": "X") event
  per span with microsecond timestamps normalised to the earliest span,
  one process lane per traced process (the parent plus each process-rank
  worker, so a merged timeline is rank-attributed by lane), and process
  ``M``etadata naming the lanes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracer import TELEMETRY_SCHEMA


class SchemaMismatch(RuntimeError):
    """A telemetry file was written under a different schema version."""


# -- JSONL ---------------------------------------------------------------------
#
# Every JSONL artifact the project writes (telemetry traces here, tuning
# reports in repro.tune.report) shares one envelope: line 1 is a header
# record carrying a ``kind`` tag and a schema-version field, every later
# line is one payload record.  The two generic helpers below own that
# envelope, so a new versioned artifact never re-invents the
# header/version-check dance (or forgets the rejection half of it).


def write_versioned_jsonl(
    path: str | Path,
    kind: str,
    schema_field: str,
    schema_version: int,
    records: Iterable[dict[str, Any]],
    header_extra: dict[str, Any] | None = None,
) -> int:
    """Write header + records; returns the record count."""
    records = list(records)
    header: dict[str, Any] = {
        "type": "header",
        "kind": kind,
        schema_field: schema_version,
        "records": len(records),
    }
    if header_extra:
        header.update(header_extra)
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return len(records)


def read_versioned_jsonl(
    path: str | Path,
    kind: str,
    schema_field: str,
    schema_version: int,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read ``(header, records)`` back, enforcing kind + schema version.

    Raises :class:`SchemaMismatch` when the file was written under a
    different schema version -- versioned artifacts are rejected rather
    than silently misread.
    """
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or lines[0].get("type") != "header" or lines[0].get("kind") != kind:
        raise ValueError(f"{path}: not a {kind} JSONL (missing header)")
    header = lines[0]
    got = header.get(schema_field)
    if got != schema_version:
        raise SchemaMismatch(
            f"{path}: {schema_field} {got} != supported {schema_version}"
        )
    return header, lines[1:]


def write_jsonl(spans: Iterable[dict[str, Any]], path: str | Path) -> int:
    """Write a header + one JSON record per span; returns the span count."""
    spans = list(spans)
    return write_versioned_jsonl(
        path,
        "repro-trace",
        "telemetry_schema",
        TELEMETRY_SCHEMA,
        spans,
        header_extra={"spans": len(spans)},
    )


def read_jsonl(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a JSONL trace back as ``(header, spans)``.

    Raises :class:`SchemaMismatch` when the file's schema version is not
    this build's -- telemetry files are versioned so consumers never
    silently misread old layouts.
    """
    return read_versioned_jsonl(
        path, "repro-trace", "telemetry_schema", TELEMETRY_SCHEMA
    )


# -- Chrome trace_event --------------------------------------------------------


def chrome_trace_events(spans: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Spans -> trace_event dicts (complete events + process metadata)."""
    spans = list(spans)
    if not spans:
        return []
    t0 = min(s["ts"] for s in spans)
    # One Perfetto process lane per traced OS process; label it with the
    # tracer's proc string (parent = "main", workers carry their rank
    # range), which is what makes a merged timeline rank-attributed.
    procs: dict[int, str] = {}
    events: list[dict[str, Any]] = []
    for s in spans:
        pid = s["pid"]
        procs.setdefault(pid, s.get("proc", f"pid {pid}"))
        event = {
            "name": s["name"],
            "ph": "X",
            "ts": (s["ts"] - t0) / 1e3,
            "dur": s["dur"] / 1e3,
            "pid": pid,
            "tid": s["tid"],
        }
        if s.get("args"):
            event["args"] = s["args"]
        events.append(event)
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": label},
        }
        for pid, label in sorted(procs.items())
    ]
    return meta + events


def write_chrome_trace(spans: Iterable[dict[str, Any]], path: str | Path) -> int:
    """Write a Perfetto-loadable trace file; returns the span count."""
    events = chrome_trace_events(spans)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"kind": "repro-trace", "telemetry_schema": TELEMETRY_SCHEMA},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    n_meta = sum(1 for e in events if e["ph"] == "M")
    return len(events) - n_meta
