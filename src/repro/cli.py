"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli table2
    python -m repro.cli fig7
    python -m repro.cli fig9 --config large
    python -m repro.cli fig16 --epoch-batches 40 --eval-points 10
    python -m repro.cli iteration --config mlperf --ranks 16 --backend ccl
    python -m repro.cli train --spec spec.json --checkpoint run.npz --workers 4
    python -m repro.cli train --spec spec.json --backend process --workers 2 --trace out.json
    python -m repro.cli train --spec spec.json --bucket-mb 8 --trace-jsonl run.jsonl
    python -m repro.cli tune --spec spec.json --budget 8 --seed 0 --out tuned.json
    python -m repro.cli tune --serve --config mlperf --sla-ms 5
    python -m repro.cli trace run.jsonl --chrome run_trace.json
    python -m repro.cli eval --checkpoint run.npz
    python -m repro.cli serve --checkpoint run.npz

Each experiment prints the same paper-vs-model table the benchmark
harness writes to ``benchmarks/results/``.  ``train``/``eval`` drive the
:mod:`repro.train` experiment API from a RunSpec JSON file; ``serve``
accepts a training checkpoint to score with trained weights.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import (
    run_fig5_mlp_kernels,
    run_fig6_overlap,
    run_fig7_single_socket,
    run_fig8_breakdown,
    run_fig9_strong_scaling,
    run_fig10_compute_comm,
    run_fig11_comm_breakdown,
    run_fig12_weak_scaling,
    run_fig13_compute_comm_weak,
    run_fig14_comm_breakdown_weak,
    run_fig15_8socket,
    run_fig16_convergence,
    run_table1,
    run_table2,
)
from repro.parallel.timing import model_iteration
from repro.perf.report import format_table

#: Experiments addressable by name, mapped to their description strings.
EXPERIMENTS: dict[str, str] = {
    "table1": "Table I: DLRM model specifications",
    "table2": "Table II: distributed-run characteristics (Eq. 1/2)",
    "fig5": "Fig. 5: single-socket MLP kernel performance",
    "fig6": "Fig. 6: MLP GEMM/SGD communication overlap",
    "fig7": "Fig. 7: single-socket DLRM time per iteration",
    "fig8": "Fig. 8: time split across Embeddings/MLP/Rest",
    "fig9": "Fig. 9: strong-scaling speedup & efficiency",
    "fig10": "Fig. 10: compute/comm split (strong scaling)",
    "fig11": "Fig. 11: communication breakdown (strong scaling)",
    "fig12": "Fig. 12: weak-scaling speedup & efficiency",
    "fig13": "Fig. 13: compute/comm split (weak scaling)",
    "fig14": "Fig. 14: communication breakdown (weak scaling)",
    "fig15": "Fig. 15: 8-socket shared-memory node scaling",
    "fig16": "Fig. 16: Split-SGD-BF16 convergence (functional training)",
}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from Kalamkar et al., SC 2020.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all experiments")
    for name, desc in EXPERIMENTS.items():
        sp = sub.add_parser(name, help=desc)
        if name in ("fig9", "fig12"):
            sp.add_argument(
                "--config", choices=["small", "large", "mlperf"], default=None,
                help="restrict to one configuration",
            )
        if name in ("fig10", "fig11", "fig13", "fig14"):
            sp.add_argument(
                "--config", choices=["large", "mlperf"], default="large"
            )
        if name == "fig16":
            sp.add_argument("--epoch-batches", type=int, default=60)
            sp.add_argument("--eval-points", type=int, default=12)
            sp.add_argument("--lr", type=float, default=0.15)
    it = sub.add_parser(
        "iteration", help="model one training iteration at paper scale"
    )
    it.add_argument("--config", choices=["small", "large", "mlperf"], required=True)
    it.add_argument("--ranks", type=int, default=1)
    it.add_argument("--backend", choices=["mpi", "ccl", "local"], default="ccl")
    it.add_argument("--exchange", choices=["scatterlist", "fused", "alltoall"], default="alltoall")
    it.add_argument("--update", choices=["reference", "atomic", "rtm", "racefree", "fused"], default="racefree")
    it.add_argument("--platform", choices=["node", "cluster"], default="cluster")
    it.add_argument("--blocking", action="store_true")
    sv = sub.add_parser(
        "serve",
        help="simulate batched inference serving: throughput vs p99 latency",
    )
    sv.add_argument("--config", choices=["small", "large", "mlperf"], default="mlperf")
    sv.add_argument("--requests", type=int, default=2000)
    sv.add_argument("--qps", type=float, default=4000.0, help="mean arrival rate")
    sv.add_argument("--policy", choices=["static", "dynamic", "adaptive"], default="dynamic")
    sv.add_argument(
        "--router", choices=["round_robin", "least_loaded", "cache_affinity"],
        default="least_loaded",
    )
    sv.add_argument("--replicas", type=int, default=4)
    sv.add_argument("--max-batch", type=int, default=256, help="batch close threshold (samples)")
    sv.add_argument(
        "--budgets-ms", type=float, nargs="+", default=[1.0, 2.0, 5.0, 10.0, 20.0],
        help="latency budgets swept by the micro-batcher",
    )
    sv.add_argument("--cache-rows", type=int, default=8192)
    sv.add_argument("--cache-policy", choices=["lru", "lfu"], default="lru")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--checkpoint", default=None, metavar="NPZ",
        help="score a held-out batch with the trained weights of this "
        "repro.train checkpoint (and align the sweep to its config)",
    )
    sv.add_argument(
        "--fault", metavar="PLAN", default="",
        help="inject replica failures and serve through them: a fault-plan "
        "string like 'serve.replica:replica=1,action=die' (actions die/"
        "slow/error; see repro.resilience.faults). Switches the run onto "
        "the degradation-aware replica set and reports shed rate",
    )
    sv.add_argument(
        "--error-threshold", type=int, default=3,
        help="consecutive replica errors that open its circuit breaker",
    )
    sv.add_argument(
        "--breaker-cooldown-ms", type=float, default=10.0,
        help="virtual-time cooldown before an opened breaker half-opens",
    )
    sv.add_argument(
        "--retry-attempts", type=int, default=3,
        help="dispatch attempts per micro-batch (first try + retries)",
    )
    tr = sub.add_parser(
        "train",
        help="train a DLRM from a RunSpec JSON (repro.train)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "performance knobs (every combination trains bit-identically):\n"
            "  --backend/--workers   execution substrate and pool width\n"
            "  --bucket-mb           issue-as-ready allreduce bucket cap\n"
            "  spec data.prefetch_depth      batches synthesized ahead\n"
            "  spec tiering.enabled / parallel.placement=auto\n"
            "                        hot/cold embedding storage + planner-\n"
            "                        chosen table owners\n"
            "Run 'repro tune --spec <json>' to search these automatically;\n"
            "docs/TUNING.md documents each knob's perf effect."
        ),
    )
    tr.add_argument("--spec", metavar="JSON", help="path to a RunSpec JSON file")
    tr.add_argument(
        "--backend", choices=["thread", "process"], default=None,
        help="execution substrate for distributed runs: 'thread' = the "
        "process-wide worker pool, 'process' = shared-memory worker "
        "processes (repro.exec.mp); default: the spec's "
        "parallel.exec_backend",
    )
    tr.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker threads (thread backend: the process-wide pool for "
        "parallel ranks, sharded kernels, batch prefetch) or worker "
        "processes (process backend); default: REPRO_WORKERS / one "
        "process per rank",
    )
    tr.add_argument(
        "--bucket-mb", type=float, default=None, metavar="MB",
        help="gradient-bucket size cap for the issue-as-ready allreduce "
        "(MiB of FP32 gradients per bucket; distributed runs only). "
        "Bucketing changes only *when* communication is issued, never "
        "the summation tree, so any value is bit-identical; default: "
        "the spec's parallel.bucket_mb",
    )
    tr.add_argument(
        "--resume", metavar="NPZ", help="resume from a checkpoint (spec embedded)"
    )
    tr.add_argument(
        "--steps", type=int, default=None,
        help="train this many steps (default: the spec's remaining budget)",
    )
    tr.add_argument(
        "--checkpoint", metavar="NPZ", help="write the final checkpoint here"
    )
    tr.add_argument(
        "--trace", metavar="JSON", default=None,
        help="record wall-clock pipeline spans and write a Chrome "
        "trace_event file here (open in Perfetto / chrome://tracing); "
        "under the process backend the timeline merges every worker, "
        "rank-attributed by process lane",
    )
    tr.add_argument(
        "--trace-jsonl", metavar="JSONL", default=None,
        help="also/instead write the raw span records as versioned JSONL "
        "(the lossless format 'repro trace' reads back)",
    )
    tr.add_argument(
        "--fault", metavar="PLAN", default=None,
        help="arm a deterministic fault plan: 'site:key=val,...;...' "
        "(sites train.step / worker.step / comm.exchange / "
        "mailbox.publish / ckpt.save; actions kill/hang/raise/delay/"
        "torn_write/corrupt; see repro.resilience.faults)",
    )
    tr.add_argument(
        "--supervise", action="store_true",
        help="run under the resilience supervisor: catch worker failures, "
        "respawn, restore from the checkpoint ring and replay "
        "bit-exactly (requires --ring-every or the spec's "
        "resilience.ring_every for checkpointed recovery)",
    )
    tr.add_argument(
        "--ring-dir", metavar="DIR", default=None,
        help="checkpoint-ring directory (default: checkpoints/<run>-ring)",
    )
    tr.add_argument(
        "--ring-every", type=int, default=None, metavar="STEPS",
        help="write a ring checkpoint every N steps (0 disables the ring)",
    )
    tr.add_argument(
        "--ring-keep", type=int, default=None, metavar="K",
        help="retained ring entries; corrupt ones are quarantined and "
        "recovery falls back to the previous entry",
    )
    tr.add_argument(
        "--events-jsonl", metavar="JSONL", default=None,
        help="write the supervisor's recovery events as JSONL "
        "(--supervise only)",
    )
    tn = sub.add_parser(
        "tune",
        help="search RunSpec performance knobs by successive halving "
        "(repro.tune)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Scores are measured short runs through the real trainer.  With\n"
            "--measure virtual (default) ranking uses the deterministic\n"
            "simulated-cluster clocks plus cost-model substrate terms, so a\n"
            "fixed --seed/--budget reproduces the identical winner and\n"
            "scores on any machine; --measure wall ranks by wall-clock on\n"
            "this machine instead.  The all-defaults arm always reaches the\n"
            "final rung, so the winner is never worse than doing nothing."
        ),
    )
    tn.add_argument("--spec", metavar="JSON", help="base RunSpec JSON file (train mode)")
    tn.add_argument(
        "--serve", action="store_true",
        help="tune serving knobs (batcher policy, router, replicas, cache) "
        "for QPS under a p99 SLA instead of training throughput",
    )
    tn.add_argument(
        "--config", choices=["small", "large", "mlperf"], default="mlperf",
        help="model config for --serve mode",
    )
    tn.add_argument("--qps", type=float, default=4000.0, help="--serve mean arrival rate")
    tn.add_argument(
        "--sla-ms", type=float, default=5.0,
        help="--serve p99 SLA: arms over it rank by how far over they are",
    )
    tn.add_argument("--budget", type=int, default=8, help="arms in the starting pool")
    tn.add_argument("--seed", type=int, default=0, help="arm-sampling seed")
    tn.add_argument(
        "--eta", type=int, default=2,
        help="halving rate: keep ceil(n/eta) arms per rung, multiply steps by eta",
    )
    tn.add_argument(
        "--rung-steps", type=int, default=2, metavar="N",
        help="measured steps at rung 0 (serve mode: requests = max(64, N))",
    )
    tn.add_argument("--max-rungs", type=int, default=3)
    tn.add_argument(
        "--warmup", type=int, default=2,
        help="untimed steps discarded before each measured window",
    )
    tn.add_argument(
        "--measure", choices=["virtual", "wall"], default="virtual",
        help="scoring clock: deterministic virtual (default) or wall-clock",
    )
    tn.add_argument(
        "--mutants", type=int, default=1,
        help="bottleneck-steered children spawned per rung from top survivors",
    )
    tn.add_argument(
        "--out", metavar="JSON", default=None,
        help="write the winning RunSpec here ('repro train --spec' accepts it)",
    )
    tn.add_argument(
        "--report", metavar="JSONL", default=None,
        help="write the TUNE_SCHEMA-versioned tuning report (arms, trials, "
        "eliminations, winner) here",
    )
    pl = sub.add_parser(
        "plan",
        help="preview the embedding placement & tiering plan of a RunSpec",
    )
    pl.add_argument("--spec", required=True, metavar="JSON", help="RunSpec JSON file")
    pl.add_argument(
        "--ranks", type=int, default=None, help="override parallel.ranks"
    )
    pl.add_argument(
        "--placement", default=None,
        help="override parallel.placement (round_robin / balanced / auto)",
    )
    pl.add_argument(
        "--tables", action="store_true",
        help="also print the per-table plan (mode, hot rows, coverage)",
    )
    tc = sub.add_parser(
        "trace", help="inspect a trace JSONL: per-stage table, Chrome export"
    )
    tc.add_argument("jsonl", metavar="JSONL", help="a --trace-jsonl output file")
    tc.add_argument(
        "--chrome", metavar="JSON", default=None,
        help="convert to a Chrome trace_event file",
    )
    ev = sub.add_parser("eval", help="evaluate a repro.train checkpoint")
    ev.add_argument("--checkpoint", required=True, metavar="NPZ")
    ev.add_argument("--batch-size", type=int, default=2048)
    ev.add_argument(
        "--batch-index", type=int, default=10_000_000,
        help="held-out dataset index (default far past any training step)",
    )
    return p


def _require_file(path: str, what: str) -> None:
    import pathlib

    if not pathlib.Path(path).is_file():
        raise SystemExit(f"{what}: file {path!r} not found")


def _dispatch(args: argparse.Namespace) -> str:
    name = args.command
    if name == "list":
        rows = [{"experiment": k, "description": v} for k, v in EXPERIMENTS.items()]
        return format_table(rows, title="Available experiments")
    if name == "table1":
        return format_table(run_table1(), title=EXPERIMENTS[name])
    if name == "table2":
        return format_table(run_table2(), title=EXPERIMENTS[name])
    if name == "fig5":
        return format_table(run_fig5_mlp_kernels(), title=EXPERIMENTS[name])
    if name == "fig6":
        _, rows = run_fig6_overlap()
        return format_table(rows, title=EXPERIMENTS[name])
    if name == "fig7":
        return format_table(run_fig7_single_socket(), title=EXPERIMENTS[name])
    if name == "fig8":
        return format_table(run_fig8_breakdown(), title=EXPERIMENTS[name])
    if name in ("fig9", "fig12"):
        configs = (args.config,) if args.config else ("small", "large", "mlperf")
        fn: Callable = run_fig9_strong_scaling if name == "fig9" else run_fig12_weak_scaling
        return format_table(fn(configs), title=EXPERIMENTS[name])
    if name == "fig10":
        return format_table(run_fig10_compute_comm(args.config), title=EXPERIMENTS[name])
    if name == "fig11":
        return format_table(run_fig11_comm_breakdown(args.config), title=EXPERIMENTS[name])
    if name == "fig13":
        return format_table(run_fig13_compute_comm_weak(args.config), title=EXPERIMENTS[name])
    if name == "fig14":
        return format_table(run_fig14_comm_breakdown_weak(args.config), title=EXPERIMENTS[name])
    if name == "fig15":
        return format_table(run_fig15_8socket(), title=EXPERIMENTS[name])
    if name == "fig16":
        curves = run_fig16_convergence(
            epoch_batches=args.epoch_batches,
            eval_points=args.eval_points,
            lr=args.lr,
        )
        return format_table(curves.rows(), title=EXPERIMENTS[name])
    if name == "train":
        from repro.train import (
            DistributedTrainer,
            RunSpec,
            StepTimer,
            Trainer,
            make_trainer,
        )

        if not args.spec and not args.resume:
            raise SystemExit("repro train: need --spec or --resume")
        if args.workers is not None and args.workers < 1:
            raise SystemExit("repro train: --workers must be >= 1")
        timer = StepTimer()
        if args.resume:
            from repro.train import load_checkpoint

            _require_file(args.resume, "repro train --resume")
            ckpt = load_checkpoint(args.resume)
            spec = ckpt.require_spec()
        else:
            _require_file(args.spec, "repro train --spec")
            spec = RunSpec.load(args.spec)
            ckpt = None
        backend = args.backend if args.backend is not None else spec.parallel.exec_backend
        distributed = spec.parallel.ranks > 1
        if args.bucket_mb is not None:
            if args.bucket_mb <= 0:
                raise SystemExit("repro train: --bucket-mb must be positive")
            if not distributed:
                raise SystemExit(
                    "repro train: --bucket-mb only applies to distributed "
                    "specs (parallel.ranks > 1)"
                )
            import dataclasses

            spec = dataclasses.replace(
                spec,
                parallel=dataclasses.replace(
                    spec.parallel, bucket_mb=args.bucket_mb
                ),
            )
            if ckpt is not None:
                ckpt.spec = spec
        res_overrides = {}
        if args.fault is not None:
            res_overrides["faults"] = args.fault
        if args.ring_dir is not None:
            res_overrides["ring_dir"] = args.ring_dir
        if args.ring_every is not None:
            res_overrides["ring_every"] = args.ring_every
        if args.ring_keep is not None:
            res_overrides["ring_keep"] = args.ring_keep
        if args.supervise:
            res_overrides["supervise"] = True
        if res_overrides:
            import dataclasses

            spec = dataclasses.replace(
                spec,
                resilience=dataclasses.replace(spec.resilience, **res_overrides),
            )
            try:
                spec.validate()
            except ValueError as exc:
                raise SystemExit(f"repro train: {exc}") from exc
            if ckpt is not None:
                ckpt.spec = spec
        if backend == "process" and not distributed:
            raise SystemExit(
                "repro train: --backend process needs a distributed spec "
                "(parallel.ranks > 1); single-process runs have no ranks "
                "to place in workers"
            )
        if backend == "thread" and args.workers is not None:
            from repro.exec import set_pool_workers

            set_pool_workers(args.workers)
        tracing = bool(args.trace or args.trace_jsonl)
        if tracing:
            from repro.obs import Tracer, set_tracer

            # Installed before the trainer is built: the process backend
            # captures the switch at executor construction to decide
            # whether workers install their own tracers.
            set_tracer(Tracer(proc="main"))
        if args.supervise or spec.resilience.supervise:
            from repro.resilience import Supervisor

            if args.resume:
                raise SystemExit(
                    "repro train: --supervise restores from its checkpoint "
                    "ring, not --resume"
                )
            if args.steps is not None:
                raise SystemExit(
                    "repro train: --supervise always runs the spec's full "
                    "remaining budget; --steps does not apply"
                )
            sup = Supervisor(spec, backend=args.backend, workers=args.workers)
            try:
                report = sup.run()
                trainer = sup.trainer
                try:
                    metrics = trainer.evaluate()
                    row = {
                        "run": spec.name,
                        "steps": len(report.losses),
                        "global_step": report.final_step,
                        "restarts": report.restarts,
                        "final_loss": (
                            report.losses[-1] if report.losses else float("nan")
                        ),
                        **metrics,
                    }
                    out = format_table(
                        [row], title=f"Supervised training run '{spec.name}'"
                    )
                    if report.events:
                        erows = [
                            {
                                "event": e["event"],
                                "restart": e.get("restart", ""),
                                "step": e.get("step", ""),
                                "detail": e.get(
                                    "error", e.get("path", e.get("disarmed", ""))
                                ),
                            }
                            for e in report.events
                        ]
                        out += "\n\n" + format_table(
                            erows, title="Recovery events"
                        )
                    if report.checkpoint:
                        out += f"\n\nring checkpoint: {report.checkpoint}"
                    if args.events_jsonl:
                        path = report.write_events(args.events_jsonl)
                        out += f"\nrecovery events written to {path}"
                    if tracing:
                        from repro.obs import (
                            stage_table,
                            write_chrome_trace,
                            write_jsonl,
                        )

                        spans = trainer.drain_trace_spans()
                        out += "\n\n" + format_table(
                            stage_table(spans),
                            title="Per-stage wall-clock breakdown",
                        )
                        if args.trace:
                            n = write_chrome_trace(spans, args.trace)
                            out += f"\n\ntrace: {n} spans written to {args.trace}"
                        if args.trace_jsonl:
                            n = write_jsonl(spans, args.trace_jsonl)
                            out += f"\ntrace: {n} spans written to {args.trace_jsonl}"
                    if args.checkpoint:
                        trainer.save_checkpoint(args.checkpoint)
                        out += f"\n\ncheckpoint written to {args.checkpoint}"
                finally:
                    trainer.close()
            finally:
                if tracing:
                    set_tracer(None)
            return out
        overrides = (
            {"backend": args.backend, "workers": args.workers} if distributed else {}
        )
        try:
            if ckpt is not None:
                cls = DistributedTrainer if distributed else Trainer
                trainer = cls.from_checkpoint(ckpt, callbacks=[timer], **overrides)
            elif distributed:
                trainer = DistributedTrainer.from_spec(
                    spec, callbacks=[timer], **overrides
                )
            else:
                trainer = make_trainer(spec, callbacks=[timer])
            try:
                start = trainer.step
                trainer.fit(args.steps)
                metrics = trainer.evaluate()
                steps_per_s = (
                    len(timer.times) / timer.total_s
                    if timer.total_s > 0
                    else float("nan")
                )
                row = {
                    "run": spec.name,
                    "steps": trainer.step - start,
                    "global_step": trainer.step,
                    "final_loss": trainer.losses[-1] if trainer.losses else float("nan"),
                    "steps_per_s": steps_per_s,
                    "rows_per_s": steps_per_s * trainer.batch_size,
                    **metrics,
                }
                out = format_table([row], title=f"Training run '{spec.name}'")
                out += "\n\n" + timer.summary()
                if distributed:
                    from repro.parallel.placement import placement_stats

                    pstats = placement_stats(
                        trainer.dist.cfg,
                        trainer.dist.owners,
                        trainer.dist.cluster.n_ranks,
                    )
                    prow = [
                        {
                            "rank": r,
                            "tables": pstats.tables_per_rank[r],
                            "embedding_mb": pstats.bytes_per_rank[r] / 2**20,
                        }
                        for r in range(trainer.dist.cluster.n_ranks)
                    ]
                    out += "\n\n" + format_table(
                        prow,
                        title=(
                            f"Placement ({spec.parallel.placement}): memory "
                            f"imbalance {pstats.memory_imbalance:.2f}"
                        ),
                    )
                if tracing:
                    from repro.obs import stage_table, write_chrome_trace, write_jsonl

                    spans = trainer.drain_trace_spans()
                    out += "\n\n" + format_table(
                        stage_table(spans), title="Per-stage wall-clock breakdown"
                    )
                    if args.trace:
                        n = write_chrome_trace(spans, args.trace)
                        out += f"\n\ntrace: {n} spans written to {args.trace}"
                    if args.trace_jsonl:
                        n = write_jsonl(spans, args.trace_jsonl)
                        out += f"\ntrace: {n} spans written to {args.trace_jsonl}"
                if args.checkpoint:
                    trainer.save_checkpoint(args.checkpoint)
                    out += f"\n\ncheckpoint written to {args.checkpoint}"
            finally:
                trainer.close()
        finally:
            if tracing:
                set_tracer(None)
        return out
    if name == "tune":
        import math

        from repro.tune import (
            SearchSpace,
            ServeTrialRunner,
            SuccessiveHalving,
            TrainTrialRunner,
            prior_step_s,
            write_report,
        )

        if args.budget < 2:
            raise SystemExit("repro tune: --budget must be >= 2")
        if args.eta < 2:
            raise SystemExit("repro tune: --eta must be >= 2")
        if args.rung_steps < 1 or args.max_rungs < 1:
            raise SystemExit("repro tune: --rung-steps/--max-rungs must be >= 1")
        if args.serve:
            import dataclasses
            import json as _json

            from repro.serve import ServeParams

            base_params = ServeParams(
                config=args.config, mean_qps=args.qps, seed=args.seed
            )
            space = SearchSpace.serve_space(base_params)
            runner: object = ServeTrialRunner(base_params, sla_ms=args.sla_ms)
            prior = None

            def winner_json(overlay: dict) -> str:
                tuned = dataclasses.replace(base_params, **overlay)
                return _json.dumps(dataclasses.asdict(tuned), indent=2)

            unit = "qps"
        else:
            from repro.train import RunSpec

            if not args.spec:
                raise SystemExit("repro tune: need --spec (or --serve)")
            _require_file(args.spec, "repro tune --spec")
            base_spec = RunSpec.load(args.spec)
            space = SearchSpace.train_space(base_spec)
            runner = TrainTrialRunner(
                base_spec, warmup=args.warmup, measure=args.measure
            )

            def prior(overlay: dict) -> float:
                return prior_step_s(base_spec.with_overrides(overlay))

            def winner_json(overlay: dict) -> str:
                return base_spec.with_overrides(overlay).to_json()

            unit = "steps_per_s"
        sha = SuccessiveHalving(
            space,
            runner,  # type: ignore[arg-type]
            budget=args.budget,
            seed=args.seed,
            eta=args.eta,
            rung0_steps=args.rung_steps,
            max_rungs=args.max_rungs,
            mutants=args.mutants,
            prior=prior,
        )
        result = sha.run()
        rows = []
        for row in result.table_rows():
            overlay_str = (
                "; ".join(f"{k}={v}" for k, v in sorted(row["overlay"].items()))
                or "(defaults)"
            )
            rows.append(
                {
                    "arm": row["arm"],
                    "origin": row["origin"],
                    "rung": row["rung"],
                    "steps": row["steps"],
                    unit: (
                        f"{row['score']:.3f}" if math.isfinite(row["score"]) else "FAILED"
                    ),
                    "bottleneck": row["bottleneck"],
                    "config": overlay_str,
                }
            )
        spec_json = winner_json(result.winner.overlay)
        mode = "serve" if args.serve else "train"
        out = format_table(
            rows,
            title=(
                f"Tuning ranking ({mode}, budget {args.budget}, seed "
                f"{args.seed}, measure {'virtual' if args.serve else args.measure})"
            ),
        )
        win = result.winner_result
        out += (
            f"\n\nwinner: arm {result.winner.arm_id} ({result.winner.origin}) "
            f"-- score {win.score:.3f} {unit} at rung {win.rung} "
            f"({win.steps} steps)"
        )
        if win.bottleneck is not None:
            out += f"\nbottleneck: {win.bottleneck.hint}"
        out += "\n\nwinning configuration:\n" + spec_json
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(spec_json + "\n")
            out += f"\n\nwinning spec written to {args.out}"
            if not args.serve:
                out += f" (run: repro train --spec {args.out})"
        if args.report:
            n = write_report(
                args.report,
                result,
                spec_json,
                header_extra={
                    "mode": mode,
                    "seed": args.seed,
                    "budget": args.budget,
                    "eta": args.eta,
                    "measure": "virtual" if args.serve else args.measure,
                },
            )
            out += f"\ntuning report: {n} records written to {args.report}"
        return out
    if name == "plan":
        import dataclasses

        from repro.parallel.placement import make_placement, placement_stats
        from repro.tiering.planner import plan_placement, profile_snapshot
        from repro.train import RunSpec

        _require_file(args.spec, "repro plan")
        spec = RunSpec.load(args.spec)
        par_overrides = {}
        if args.ranks is not None:
            if args.ranks < 1:
                raise SystemExit("repro plan: --ranks must be >= 1")
            par_overrides["ranks"] = args.ranks
        if args.placement is not None:
            par_overrides["placement"] = args.placement
        if par_overrides:
            spec = dataclasses.replace(
                spec, parallel=dataclasses.replace(spec.parallel, **par_overrides)
            )
        cfg = spec.build_config()
        ranks = spec.parallel.ranks
        tier = spec.tiering
        tiering_active = (
            tier.enabled or spec.parallel.placement == "auto"
        ) and spec.precision.storage == "fp32"
        snapshot = (
            profile_snapshot(spec, cfg)
            if tiering_active and tier.profile_batches > 0
            else None
        )
        plan = plan_placement(
            cfg,
            ranks,
            snapshot=snapshot,
            hot_rows=tier.hot_rows if tiering_active else 0,
            coverage_threshold=tier.coverage_threshold,
            min_table_rows=tier.min_table_rows,
        )
        if spec.parallel.placement == "auto":
            owners = list(plan.owners)
        else:
            owners = make_placement(spec.parallel.placement, cfg, ranks)
        stats = placement_stats(cfg, owners, ranks)
        row_bytes = cfg.embedding_dim * 4
        per_table_a2a = cfg.alltoall_bytes() / cfg.num_tables
        rank_rows = []
        for r in range(ranks):
            owned = [t for t, o in enumerate(owners) if o == r]
            hot_mb = sum(
                int(plan.plans[t].hot_rows.size) * row_bytes for t in owned
            ) / 2**20
            rank_rows.append(
                {
                    "rank": r,
                    "tables": len(owned),
                    "embedding_mb": stats.bytes_per_rank[r] / 2**20,
                    "hot_mb": hot_mb,
                    "gather_ms": sum(plan.table_cost[t] for t in owned) * 1e3,
                    "alltoall_mb": len(owned) * per_table_a2a / 2**20,
                }
            )
        tiered = sum(1 for p in plan.plans.values() if p.mode == "hot_cold")
        out = format_table(
            rank_rows,
            title=(
                f"Placement plan '{spec.name}': {spec.parallel.placement}, "
                f"{ranks} rank(s), {tiered}/{cfg.num_tables} tables tiered, "
                f"memory imbalance {stats.memory_imbalance:.2f}"
            ),
        )
        if args.tables:
            out += "\n\n" + format_table(
                plan.describe(cfg), title="Per-table storage plan"
            )
        return out
    if name == "trace":
        from repro.obs import read_jsonl, stage_table, write_chrome_trace

        _require_file(args.jsonl, "repro trace")
        header, spans = read_jsonl(args.jsonl)
        out = format_table(
            stage_table(spans),
            title=(
                f"Per-stage breakdown of {args.jsonl} "
                f"({header['spans']} spans, schema v{header['telemetry_schema']})"
            ),
        )
        if args.chrome:
            n = write_chrome_trace(spans, args.chrome)
            out += f"\n\n{n} spans converted to Chrome trace {args.chrome}"
        return out
    if name == "eval":
        from repro.core.metrics import accuracy, log_loss, roc_auc
        from repro.serve import InferenceEngine
        from repro.train import load_checkpoint

        _require_file(args.checkpoint, "repro eval")
        ckpt = load_checkpoint(args.checkpoint)
        spec = ckpt.require_spec()
        engine = InferenceEngine.from_checkpoint(args.checkpoint)
        batch = spec.build_dataset().batch(args.batch_size, args.batch_index)
        probs = engine.predict(batch)
        row = {
            "run": spec.name,
            "global_step": ckpt.step,
            "samples": batch.size,
            "eval_loss": log_loss(batch.labels, probs),
            "auc": roc_auc(batch.labels, probs),
            "accuracy": accuracy(batch.labels, probs),
            "mean_ctr": float(probs.mean()),
        }
        return format_table([row], title=f"Checkpoint evaluation ({args.checkpoint})")
    if name == "serve":
        from repro.serve import ServeParams, frontier_rows, sweep_budgets

        scored = ""
        if args.checkpoint:
            from repro.serve import InferenceEngine
            from repro.train import load_checkpoint

            _require_file(args.checkpoint, "repro serve --checkpoint")
            ckpt = load_checkpoint(args.checkpoint)
            spec = ckpt.require_spec()
            engine = InferenceEngine.from_checkpoint(args.checkpoint)
            batch = spec.build_dataset().batch(min(args.max_batch, 256), 10_000_000)
            probs = engine.predict(batch)
            args.config = spec.model.config
            scored = format_table(
                [
                    {
                        "run": spec.name,
                        "global_step": ckpt.step,
                        "samples": batch.size,
                        "mean_ctr": float(probs.mean()),
                    }
                ],
                title="Functional scoring with trained weights",
            ) + "\n\n"
        if args.requests < 1:
            raise SystemExit("repro serve: --requests must be >= 1")
        if args.qps <= 0:
            raise SystemExit("repro serve: --qps must be positive")
        if args.replicas < 1:
            raise SystemExit("repro serve: --replicas must be >= 1")
        if args.max_batch < 1:
            raise SystemExit("repro serve: --max-batch must be >= 1")
        if args.cache_rows < 1:
            raise SystemExit("repro serve: --cache-rows must be >= 1")
        if any(b <= 0 for b in args.budgets_ms):
            raise SystemExit("repro serve: --budgets-ms values must be positive")
        degrade = None
        if args.fault:
            from repro.resilience.faults import FaultPlan
            from repro.serve import DegradePolicy

            try:
                FaultPlan.parse(args.fault)
            except ValueError as exc:
                raise SystemExit(f"repro serve: --fault: {exc}") from exc
            if args.error_threshold < 1:
                raise SystemExit("repro serve: --error-threshold must be >= 1")
            if args.retry_attempts < 1:
                raise SystemExit("repro serve: --retry-attempts must be >= 1")
            degrade = DegradePolicy(
                error_threshold=args.error_threshold,
                cooldown_s=args.breaker_cooldown_ms * 1e-3,
                retry_attempts=args.retry_attempts,
            )
        params = ServeParams(
            config=args.config,
            requests=args.requests,
            mean_qps=args.qps,
            policy=args.policy,
            router=args.router,
            replicas=args.replicas,
            max_batch_samples=args.max_batch,
            cache_rows=args.cache_rows,
            cache_policy=args.cache_policy,
            seed=args.seed,
            fault=args.fault,
        )
        sweep = sweep_budgets(params, budgets_ms=tuple(args.budgets_ms), degrade=degrade)
        columns = [
            "policy", "router", "budget_ms", "batches", "batch_samples",
            "hit_rate", "qps", "p50_ms", "p95_ms", "p99_ms",
        ]
        if args.fault:
            columns += ["shed_rate", "retries", "dead_replicas"]
        table = format_table(
            sweep,
            columns=columns,
            title=(
                f"Serving {args.config}: throughput vs p99 latency "
                f"({args.requests} requests, {args.replicas} replicas"
                + (", degradation-aware" if args.fault else "")
                + ")"
            ),
        )
        frontier = format_table(
            frontier_rows(sweep), title="Throughput-under-SLA frontier"
        )
        return f"{scored}{table}\n\n{frontier}"
    if name == "iteration":
        res = model_iteration(
            args.config,
            args.ranks,
            platform=args.platform,
            backend=args.backend,
            blocking=args.blocking,
            exchange=args.exchange,
            update=args.update,
        )
        bd = res.comm_breakdown()
        rows = [
            {
                "config": res.config,
                "ranks": res.n_ranks,
                "backend": res.backend,
                "exchange": res.exchange,
                "total_ms": res.iteration_time * 1e3,
                "compute_ms": res.compute_time * 1e3,
                "alltoall_wait_ms": bd["Alltoall-Wait"] * 1e3,
                "allreduce_wait_ms": bd["Allreduce-Wait"] * 1e3,
            }
        ]
        return format_table(rows, title="Modelled iteration")
    raise ValueError(f"unknown command {name!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    print(_dispatch(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
