"""repro: reproduction of "Optimizing Deep Learning Recommender Systems'
Training On CPU Cluster Architectures" (Kalamkar et al., SC 2020).

Packages
--------
core      The paper's contribution: optimized DLRM training operators,
          update strategies, Split-SGD-BF16, configs (Table I/II).
kernels   Blocked tensor layouts + batch-reduce GEMM (Alg. 5 substrate).
hw        Analytic hardware model of the two testbeds (specs, topologies,
          cost model, calibration).
comm      Functional collectives, backend progress models (MPI vs CCL),
          exchange strategies, DDP gradient reducer.
parallel  The simulated SPMD cluster, the hybrid-parallel DLRM, its
          analytic paper-scale twin, and the MLP overlap engine.
data      Random + synthetic-Criteo datasets, loaders.
perf      Virtual clocks, profilers, report tables.
bench     Experiment drivers regenerating every paper table and figure.
"""

__version__ = "1.0.0"

from repro.core.config import CONFIGS, LARGE, MLPERF, SMALL, DLRMConfig, get_config
from repro.core.model import DLRM
from repro.core.optim import SGD, MasterWeightSGD, SplitSGD
from repro.parallel.cluster import SimCluster
from repro.parallel.hybrid import DistributedDLRM
from repro.parallel.timing import model_iteration, single_socket_iteration

__all__ = [
    "__version__",
    "CONFIGS",
    "LARGE",
    "MLPERF",
    "SMALL",
    "DLRMConfig",
    "get_config",
    "DLRM",
    "SGD",
    "MasterWeightSGD",
    "SplitSGD",
    "SimCluster",
    "DistributedDLRM",
    "model_iteration",
    "single_socket_iteration",
]
