"""repro: reproduction of "Optimizing Deep Learning Recommender Systems'
Training On CPU Cluster Architectures" (Kalamkar et al., SC 2020).

Packages
--------
core      The paper's contribution: optimized DLRM training operators,
          update strategies, Split-SGD-BF16, configs (Table I/II).
kernels   Blocked tensor layouts + batch-reduce GEMM (Alg. 5 substrate).
hw        Analytic hardware model of the two testbeds (specs, topologies,
          cost model, calibration).
comm      Functional collectives, backend progress models (MPI vs CCL),
          exchange strategies, DDP gradient reducer.
parallel  The simulated SPMD cluster, the hybrid-parallel DLRM, its
          analytic paper-scale twin, and the MLP overlap engine.
data      Random + synthetic-Criteo datasets, loaders.
exec      Real thread parallelism: the process-wide worker pool behind
          parallel ranks, the sharded kernels and the prefetching data
          pipeline (deterministic, bit-identical to sequential runs).
perf      Virtual clocks, profilers, report tables.
bench     Experiment drivers regenerating every paper table and figure.
train     The unified experiment API: JSON-round-trippable RunSpecs,
          component registries, the callback-instrumented Trainer /
          DistributedTrainer, and bit-exact ``.npz`` checkpointing.
serve     Batched, cache-aware inference: the forward-only engine
          (loadable from a training checkpoint), latency-budgeted
          micro-batcher, embedding cache, multi-socket replicas, SLA
          frontier.

The stable public API is re-exported here: configs and the model
(``DLRMConfig``, ``DLRM``), optimizers, the simulated cluster, and the
``repro.train`` experiment surface (``RunSpec``, ``make_trainer``,
``Trainer``, checkpoint helpers).  Everything else is importable from
its package but may move between PRs.
"""

__version__ = "1.1.0"

from repro.core.config import CONFIGS, LARGE, MLPERF, SMALL, DLRMConfig, get_config
from repro.core.model import DLRM
from repro.core.optim import SGD, MasterWeightSGD, SparseAdagrad, SplitSGD
from repro.exec import PrefetchLoader, WorkerPool, get_pool, set_pool_workers
from repro.parallel.cluster import SimCluster
from repro.parallel.hybrid import DistributedDLRM
from repro.parallel.timing import model_iteration, single_socket_iteration
from repro.serve.engine import InferenceEngine
from repro.train import (
    Callback,
    DistributedTrainer,
    RunSpec,
    Trainer,
    build_from_checkpoint,
    load_checkpoint,
    make_trainer,
    save_checkpoint,
)

__all__ = [
    "__version__",
    "CONFIGS",
    "Callback",
    "DLRM",
    "DLRMConfig",
    "DistributedDLRM",
    "DistributedTrainer",
    "InferenceEngine",
    "LARGE",
    "MLPERF",
    "MasterWeightSGD",
    "PrefetchLoader",
    "RunSpec",
    "SGD",
    "WorkerPool",
    "get_pool",
    "set_pool_workers",
    "SMALL",
    "SimCluster",
    "SparseAdagrad",
    "SplitSGD",
    "Trainer",
    "build_from_checkpoint",
    "get_config",
    "load_checkpoint",
    "make_trainer",
    "model_iteration",
    "save_checkpoint",
    "single_socket_iteration",
]
