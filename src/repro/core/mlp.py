"""Multi-layer perceptron with reference and blocked execution engines.

The dense half of DLRM (paper Sect. III-B).  Each fully connected layer
computes ``Y[N, K] = X[N, C] @ W[K, C]^T + b`` in the forward pass and the
two backward GEMMs

* backward-by-data:    ``dX = dY @ W``
* backward-by-weights: ``dW = dY^T @ X``, ``db = sum_n dY``

The ``blocked`` engine runs all three passes through the 4-D blocked
layouts and the batch-reduce GEMM of :mod:`repro.kernels` (paper Alg. 5);
the ``reference`` engine uses plain matmuls (the PyTorch/MKL baseline).
Both produce identical FP32 results up to accumulation order; tests pin
them together within tight tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.core.bf16 import bf16_dot
from repro.core.param import Parameter
from repro.kernels.blocked import (
    block_activation,
    block_weight,
    choose_blocking,
)
from repro.kernels.gemm import FlopCounter, blocked_matmul
from repro.kernels.workspace import Workspace

#: GEMM execution engines: plain matmul (the MKL baseline), the blocked
#: batch-reduce path (Alg. 5), and an emulated-``vdpbf16ps`` path that
#: rounds both operands to BF16 and accumulates in FP32 (the paper's
#: Cooper Lake outlook, Sect. VII: "this will help to also significantly
#: speed-up the MLP portions").
ENGINES = ("reference", "blocked", "bf16")


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(dy: np.ndarray, y: np.ndarray) -> np.ndarray:
    """ReLU backward using the *output* (y > 0 iff x > 0)."""
    return dy * (y > 0.0)


def sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically-stable sigmoid; ``out`` may alias ``x`` (epilogues
    overwrite the GEMM result in place, killing the last allocation)."""
    x = np.asarray(x)
    if out is None:
        out = np.empty_like(x, dtype=np.float32)
    pos = x >= 0
    neg = ~pos
    # The masked gathers copy before the masked writes land, so an
    # aliased ``out`` is safe: each element is read once, written once.
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[neg])
    out[neg] = ex / (1.0 + ex)
    return out


def _blocked_gemm_nt(
    x: np.ndarray,
    w: np.ndarray,
    threads: int,
    counter: FlopCounter | None,
    observe: bool = False,
) -> np.ndarray:
    """``x[N, C] @ w[K, C]^T`` through the blocked layouts of Alg. 5.

    ``observe=False`` (the default hot path) accounts the whole GEMM on
    ``counter`` analytically and lets :func:`blocked_matmul` take its
    single-tensordot fast path; ``observe=True`` threads the counter
    through for per-block accounting, which forces the per-work-item
    loop (the observable/testable decomposition).  Total flops are
    identical either way -- the blocks tile the GEMM exactly.
    """
    n, c = x.shape
    k = w.shape[0]
    layout = choose_blocking(n, c, k)
    x4 = block_activation(x, layout.bn, layout.bc)
    w4 = block_weight(w, layout.bc, layout.bk)
    if not observe and counter is not None:
        counter.add_gemm(n, k, c)
        counter = None
    y4 = blocked_matmul(x4, w4, layout, threads=threads, counter=counter)
    kb, nb, bn, bk = y4.shape
    # y4 is [Kb][Nb][bn][bk]; flatten back to [N, K].
    return np.ascontiguousarray(y4.transpose(1, 2, 0, 3).reshape(nb * bn, kb * bk))


def _matmul_into(ws: Workspace, key: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` into the workspace buffer named ``key``.

    Falls back to a fresh allocation when either operand aliases the
    buffer (self-feeding calls: the GEMM must never write what it is
    reading).
    """
    out = ws.take(key, (a.shape[0], b.shape[1]))
    if np.may_share_memory(a, out) or np.may_share_memory(b, out):
        return a @ b
    np.matmul(a, b, out=out)
    return out


class FullyConnected:
    """One fully connected layer; optionally followed by an activation.

    ``activation`` is one of ``None``, ``"relu"`` or ``"sigmoid"`` and is
    fused into the layer (the paper notes activations are element-wise
    and fused into the GEMM epilogue, so they never appear as separate
    hot ops).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        activation: str | None = "relu",
        engine: str = "reference",
        threads: int = 28,
        name: str = "",
        observe_blocks: bool = False,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if activation not in (None, "relu", "sigmoid"):
            raise ValueError(f"unsupported activation {activation!r}")
        rng = rng or np.random.default_rng()
        # DLRM reference initialisation: N(0, sqrt(2 / (fan_in + fan_out))).
        std = np.sqrt(2.0 / (in_features + out_features))
        w = rng.normal(0.0, std, size=(out_features, in_features)).astype(np.float32)
        b = rng.normal(0.0, np.sqrt(1.0 / out_features), size=out_features).astype(np.float32)
        self.weight = Parameter(w, name=f"{name}.weight")
        self.bias = Parameter(b, name=f"{name}.bias")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.engine = engine
        self.threads = threads
        #: True forces the blocked engine through the per-block loop so
        #: the Alg. 5 decomposition stays observable (tests, breakdowns);
        #: False (default) lets it use the single-matmul fast path.
        self.observe_blocks = observe_blocks
        self.flops = FlopCounter()
        #: Scratch arena: GEMM outputs and backward intermediates live in
        #: grow-only buffers, so steady-state steps allocate nothing.
        self._ws = Workspace()
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of the layer's trainable tensors, keyed by name."""
        return {"weight": self.weight.value.copy(), "bias": self.bias.value.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore tensors saved by :meth:`state_dict`, bit-exactly.

        Strict on shapes *and* dtype: a float64 entry would load with
        silent rounding, which breaks the checkpoint contract.
        """
        for key, param in (("weight", self.weight), ("bias", self.bias)):
            if key not in state:
                raise KeyError(f"missing state entry {key!r}")
            value = np.asarray(state[key])
            if value.dtype != np.float32:
                raise ValueError(
                    f"{key}: dtype {value.dtype} != expected {np.dtype(np.float32)}"
                )
            if value.shape != param.value.shape:
                raise ValueError(
                    f"{key}: shape {value.shape} != expected {param.value.shape}"
                )
            param.value[...] = value
            param.zero_grad()

    @property
    def workspace_bytes(self) -> int:
        """Resident scratch bytes of this layer's arena."""
        return self._ws.nbytes

    # -- passes ----------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One training forward pass.

        The returned array lives in this layer's workspace (reference
        engine): it stays valid until the *next* forward through the
        same layer; callers that keep results across steps must copy.
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        self._x = x
        if self.engine == "blocked":
            z = _blocked_gemm_nt(
                x, self.weight.value, self.threads, self.flops, self.observe_blocks
            )
        elif self.engine == "bf16":
            self.flops.add_gemm(x.shape[0], self.out_features, self.in_features)
            z = bf16_dot(x, self.weight.value.T)
        else:
            self.flops.add_gemm(x.shape[0], self.out_features, self.in_features)
            z = _matmul_into(self._ws, "fwd.z", x, self.weight.value.T)
        z += self.bias.value
        if self.activation == "relu":
            np.maximum(z, 0.0, out=z)
        elif self.activation == "sigmoid":
            sigmoid(z, out=z)
        self._y = z
        return z

    def infer(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Forward pass without autograd state (inference/eval mode).

        Produces bit-identical results to :meth:`forward` but stores no
        activations, so interleaving inference with training never
        corrupts a pending backward.  ``out`` may be a preallocated
        C-contiguous ``(N, out_features)`` float32 buffer; the reference
        engine then writes the GEMM result directly into it (the serving
        engine's warm path reuses one buffer per layer across calls).
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        usable = (
            out is not None
            and out.shape == (x.shape[0], self.out_features)
            and out.dtype == np.float32
            and out.flags["C_CONTIGUOUS"]
        )
        if self.engine == "blocked":
            z = _blocked_gemm_nt(
                x, self.weight.value, self.threads, self.flops, self.observe_blocks
            )
        elif self.engine == "bf16":
            self.flops.add_gemm(x.shape[0], self.out_features, self.in_features)
            z = bf16_dot(x, self.weight.value.T)
        elif usable:
            self.flops.add_gemm(x.shape[0], self.out_features, self.in_features)
            np.matmul(x, self.weight.value.T, out=out)
            z = out
        else:
            self.flops.add_gemm(x.shape[0], self.out_features, self.in_features)
            z = x @ self.weight.value.T
        if z is not out and usable:
            out[...] = z
            z = out
        z += self.bias.value
        if self.activation == "relu":
            np.maximum(z, 0.0, out=z)
        elif self.activation == "sigmoid":
            sigmoid(z, out=z)
        return z

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backward-by-weights (into .grad) and backward-by-data (returned).

        Like :meth:`forward`, the returned ``dx`` and the internal
        intermediates live in the layer's workspace; they are
        overwritten by the next backward through this layer.
        """
        if self._x is None or self._y is None:
            raise RuntimeError("backward called before forward")
        dy = np.ascontiguousarray(dy, dtype=np.float32)
        if dy.shape != self._y.shape:
            raise ValueError(f"dy shape {dy.shape} != output {self._y.shape}")
        if self.activation == "relu":
            dz = self._ws.take("bwd.dz", dy.shape)
            np.multiply(dy, self._y > 0.0, out=dz)
        elif self.activation == "sigmoid":
            dz = self._ws.take("bwd.dz", dy.shape)
            np.multiply(dy, self._y, out=dz)
            one_minus_y = self._ws.take("bwd.one_minus_y", dy.shape)
            np.subtract(1.0, self._y, out=one_minus_y)
            dz *= one_minus_y
        else:
            dz = dy
        if self.engine == "blocked":
            # BWD_W: dW[K, C] = dz[N, K]^T @ x[N, C]: a GEMM with the
            # minibatch as reduction dim -- run blocked with operands
            # recast so the batch-reduce kernel reduces over N.
            dw = _blocked_gemm_nt(
                np.ascontiguousarray(dz.T), np.ascontiguousarray(self._x.T),
                self.threads, self.flops, self.observe_blocks,
            )
            # BWD_D: dX[N, C] = dz[N, K] @ W[K, C].
            dx = _blocked_gemm_nt(
                dz, np.ascontiguousarray(self.weight.value.T),
                self.threads, self.flops, self.observe_blocks,
            )
        elif self.engine == "bf16":
            # Both backward GEMMs through the emulated BF16 dot product.
            self.flops.add_gemm(self.out_features, self.in_features, dz.shape[0])
            dw = bf16_dot(np.ascontiguousarray(dz.T), self._x)
            self.flops.add_gemm(dz.shape[0], self.in_features, self.out_features)
            dx = bf16_dot(dz, self.weight.value)
        else:
            self.flops.add_gemm(self.out_features, self.in_features, dz.shape[0])
            dw = _matmul_into(self._ws, "bwd.dw", dz.T, self._x)
            self.flops.add_gemm(dz.shape[0], self.in_features, self.out_features)
            dx = _matmul_into(self._ws, "bwd.dx", dz, self.weight.value)
        self.weight.accumulate_grad(dw)
        self.bias.accumulate_grad(dz.sum(axis=0))
        return dx


class MLP:
    """A stack of fully connected layers (Bottom or Top MLP of DLRM)."""

    def __init__(
        self,
        in_features: int,
        layer_sizes: tuple[int, ...] | list[int],
        rng: np.random.Generator | None = None,
        last_activation: str | None = None,
        engine: str = "reference",
        threads: int = 28,
        name: str = "mlp",
    ):
        if not layer_sizes:
            raise ValueError("need at least one layer")
        rng = rng or np.random.default_rng()
        self.layers: list[FullyConnected] = []
        prev = in_features
        for i, size in enumerate(layer_sizes):
            last = i == len(layer_sizes) - 1
            self.layers.append(
                FullyConnected(
                    prev,
                    size,
                    rng=rng,
                    activation=(last_activation if last else "relu"),
                    engine=engine,
                    threads=threads,
                    name=f"{name}.{i}",
                )
            )
            prev = size

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    @property
    def workspace_bytes(self) -> int:
        """Resident scratch bytes across all layers' arenas."""
        return sum(layer.workspace_bytes for layer in self.layers)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat state of the whole stack, keyed ``layers.<i>.<tensor>``."""
        out: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.state_dict().items():
                out[f"layers.{i}.{key}"] = value
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict`; keys must match exactly."""
        expected = {
            f"layers.{i}.{k}"
            for i, layer in enumerate(self.layers)
            for k in ("weight", "bias")
        }
        if set(state) != expected:
            missing = sorted(expected - set(state))
            extra = sorted(set(state) - expected)
            raise KeyError(f"state mismatch: missing {missing}, unexpected {extra}")
        for i, layer in enumerate(self.layers):
            layer.load_state_dict(
                {k: state[f"layers.{i}.{k}"] for k in ("weight", "bias")}
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def infer(self, x: np.ndarray, outs: list[np.ndarray] | None = None) -> np.ndarray:
        """Forward-only pass through the stack (see FullyConnected.infer).

        ``outs`` is an optional list of per-layer preallocated output
        buffers (one per layer, shapes ``(N, layer.out_features)``).
        """
        if outs is not None and len(outs) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} output buffers, got {len(outs)}"
            )
        for i, layer in enumerate(self.layers):
            x = layer.infer(x, out=None if outs is None else outs[i])
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def backward_segment(self, dy: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Backward through layers ``[start, stop)`` only (in reverse),
        returning the gradient flowing into layer ``start``.

        Running ``backward_segment`` over a partition of ``[0, n)`` in
        descending order is bit-for-bit :meth:`backward` -- it is the
        same layer loop, split where the issue-as-ready allreduce wants
        to ship each bucket's weight gradients.
        """
        if not 0 <= start < stop <= len(self.layers):
            raise ValueError(
                f"segment [{start}, {stop}) invalid for {len(self.layers)} layers"
            )
        for layer in reversed(self.layers[start:stop]):
            dy = layer.backward(dy)
        return dy

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()
