"""Evaluation metrics: ROC AUC (Fig. 16's y-axis), accuracy, log loss.

Implemented from scratch (pure numpy -- no sklearn or scipy): AUC via
the Mann-Whitney U statistic with midrank tie handling, which is exact
and O(n log n).
"""

from __future__ import annotations

import numpy as np


def midrank(x: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned the mean rank of their run.

    Pure-numpy equivalent of ``scipy.stats.rankdata(x)`` (the default
    "average" method): sort once, find the tie runs, give every member of
    a run occupying sorted positions ``[s, e)`` the midrank
    ``(s + e + 1) / 2`` (1-based, hence exact halves for even runs).
    """
    x = np.asarray(x).ravel()
    if x.size == 0:
        return np.empty(0, dtype=np.float64)
    order = np.argsort(x, kind="stable")
    xs = x[order]
    run_start = np.r_[True, xs[1:] != xs[:-1]]
    run_id = np.cumsum(run_start) - 1
    starts = np.flatnonzero(run_start)
    ends = np.r_[starts[1:], xs.size]
    mid = (starts + ends + 1) / 2.0
    out = np.empty(x.size, dtype=np.float64)
    out[order] = mid[run_id]
    return out


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve of binary ``labels`` given ``scores``.

    Uses the rank-sum identity: AUC = (R_pos - n_pos(n_pos+1)/2) /
    (n_pos * n_neg), with midranks for ties.  Raises if only one class is
    present (AUC undefined).
    """
    y = np.asarray(labels).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.shape != s.shape:
        raise ValueError(f"labels/scores shape mismatch: {y.shape} vs {s.shape}")
    pos = y > 0.5
    n_pos = int(pos.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both classes present")
    ranks = midrank(s)
    r_pos = ranks[pos].sum()
    return float((r_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def accuracy(labels: np.ndarray, scores: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of correct binary predictions at ``threshold``."""
    y = np.asarray(labels).ravel() > 0.5
    p = np.asarray(scores).ravel() >= threshold
    if y.shape != p.shape:
        raise ValueError("labels/scores shape mismatch")
    return float(np.mean(y == p))


def log_loss(labels: np.ndarray, probs: np.ndarray, eps: float = 1e-7) -> float:
    """Mean binary cross-entropy of predicted probabilities."""
    y = np.asarray(labels, dtype=np.float64).ravel()
    p = np.clip(np.asarray(probs, dtype=np.float64).ravel(), eps, 1.0 - eps)
    if y.shape != p.shape:
        raise ValueError("labels/probs shape mismatch")
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log1p(-p)))
