"""Learning-rate schedules (MLPerf DLRM convergence-run style).

The MLPerf recommendation benchmark the paper targets trains with a
linear warmup followed by a hold and a polynomial/linear decay.  The
scheduler mutates the optimizer's ``lr`` in place each step, so it works
with every optimizer in :mod:`repro.core.optim` (including distributed
per-rank optimizers, which must all be stepped to stay in lock-step).
"""

from __future__ import annotations

from repro.core.optim import SGD


class WarmupDecaySchedule:
    """Linear warmup -> hold at peak -> linear decay to ``final_lr``."""

    def __init__(
        self,
        peak_lr: float,
        warmup_steps: int,
        hold_steps: int = 0,
        decay_steps: int = 0,
        final_lr: float = 0.0,
        start_lr: float = 0.0,
    ):
        if peak_lr <= 0:
            raise ValueError("peak_lr must be positive")
        if min(warmup_steps, hold_steps, decay_steps) < 0:
            raise ValueError("step counts must be non-negative")
        if not 0 <= final_lr <= peak_lr:
            raise ValueError("final_lr must be in [0, peak_lr]")
        if not 0 <= start_lr <= peak_lr:
            raise ValueError("start_lr must be in [0, peak_lr]")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.hold_steps = hold_steps
        self.decay_steps = decay_steps
        self.final_lr = final_lr
        self.start_lr = start_lr
        self._step = 0

    def lr_at(self, step: int) -> float:
        """The learning rate scheduled for (0-based) ``step``."""
        if step < 0:
            raise ValueError("step must be non-negative")
        if step < self.warmup_steps:
            frac = (step + 1) / self.warmup_steps
            return self.start_lr + (self.peak_lr - self.start_lr) * frac
        step -= self.warmup_steps
        if step < self.hold_steps:
            return self.peak_lr
        step -= self.hold_steps
        if self.decay_steps == 0 or step >= self.decay_steps:
            return self.final_lr if self.decay_steps else self.peak_lr
        frac = step / self.decay_steps
        return self.peak_lr + (self.final_lr - self.peak_lr) * frac

    @property
    def current_step(self) -> int:
        return self._step

    def step(self, *optimizers: SGD) -> float:
        """Set the next step's lr on every optimizer; returns that lr.

        Pass all per-rank optimizers of a distributed run so their
        schedules stay identical (a mismatch would silently break the
        distributed == single-process invariant).
        """
        lr = self.lr_at(self._step)
        self._step += 1
        for opt in optimizers:
            opt.lr = lr
        return lr
