"""The DLRM model: Bottom MLP + EmbeddingBags + Interaction + Top MLP.

Assembles the operators of this package into the topology of paper
Fig. 1.  The dense features run through the Bottom MLP (ending at the
embedding dimension E); the S sparse features are looked up in their
tables; interaction combines the S+1 vectors; the Top MLP produces one
logit per sample, trained with BCE.

``loss_normalizer`` deserves a note: the loss divides the *sum* of
per-sample losses by an explicit constant (default: the local minibatch).
The hybrid-parallel wrapper sets it to the *global* minibatch on every
rank so that summed (allreduced) gradients equal the single-socket
gradients exactly -- the invariant the distributed tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import Batch
from repro.core.config import DLRMConfig
from repro.core.embedding import EmbeddingBag, SparseGrad, SplitEmbeddingBag
from repro.core.interaction import make_interaction
from repro.core.loss import BCEWithLogitsLoss
from repro.core.mlp import MLP, sigmoid
from repro.core.optim import SGD
from repro.core.param import Parameter
from repro.core.update import uses_fused_dispatch
from repro.obs.tracer import trace
from repro.util import rng_from


class DLRM:
    """Single-process DLRM (the paper's single-socket workload)."""

    def __init__(
        self,
        cfg: DLRMConfig,
        seed: int = 0,
        engine: str = "reference",
        storage: str = "fp32",
        lo_bits: int = 16,
        table_ids: list[int] | None = None,
    ):
        """Build the model.

        ``table_ids`` restricts which embedding tables this process owns
        (the hybrid-parallel wrapper passes each rank its share); table
        initialisation draws from per-table seeded streams, so any
        partition of tables across processes reproduces the exact same
        weights as a single process holding all of them.
        """
        if storage not in ("fp32", "split_bf16"):
            raise ValueError(f"storage must be fp32 or split_bf16, got {storage!r}")
        self.cfg = cfg
        self.seed = seed
        self.storage = storage
        rng = np.random.default_rng(seed)
        self.bottom = MLP(
            cfg.dense_features,
            cfg.bottom_mlp,
            rng=rng,
            last_activation="relu",
            engine=engine,
            name="bottom",
        )
        self.top = MLP(
            cfg.interaction_dim,
            cfg.top_mlp,
            rng=rng,
            last_activation=None,  # logits; sigmoid lives in the loss
            engine=engine,
            name="top",
        )
        self.table_ids = list(range(cfg.num_tables)) if table_ids is None else list(table_ids)
        if any(not 0 <= t < cfg.num_tables for t in self.table_ids):
            raise ValueError("table_ids out of range")
        self.tables: dict[int, EmbeddingBag] = {}
        for t in self.table_ids:
            table_rng = rng_from(seed, "table", t)
            if storage == "split_bf16":
                self.tables[t] = SplitEmbeddingBag(
                    cfg.table_rows[t], cfg.embedding_dim, rng=table_rng, lo_bits=lo_bits
                )
            else:
                self.tables[t] = EmbeddingBag(
                    cfg.table_rows[t], cfg.embedding_dim, rng=table_rng
                )
        self.interaction = make_interaction(
            cfg.interaction, cfg.num_tables, cfg.embedding_dim
        )
        self.loss_fn = BCEWithLogitsLoss()
        self._batch: Batch | None = None
        self._logits: np.ndarray | None = None
        #: Sparse gradients of the last backward, keyed by table id.
        self.sparse_grads: dict[int, SparseGrad] = {}

    # -- introspection ------------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All dense (MLP) parameters, bottom first."""
        return self.bottom.parameters() + self.top.parameters()

    def capacity_bytes(self) -> int:
        """Model + optimizer-visible storage of this process's shard."""
        dense = sum(p.nbytes for p in self.parameters())
        sparse = sum(t.capacity_bytes() for t in self.tables.values())
        return dense + sparse

    def state_dict(self) -> dict[str, np.ndarray]:
        """All weights of this process's shard as a flat dict of copies.

        Keys are ``bottom.layers.<i>.<tensor>``, ``top.layers.<i>.<tensor>``
        and ``table.<t>.<tensor>`` (``weight`` for FP32 tables, the
        ``hi``/``lo`` uint16 halves for Split-BF16 tables -- together the
        exact FP32 master weight, so a checkpoint loses nothing).
        """
        out: dict[str, np.ndarray] = {}
        for prefix, mlp in (("bottom", self.bottom), ("top", self.top)):
            for key, value in mlp.state_dict().items():
                out[f"{prefix}.{key}"] = value
        for t, table in self.tables.items():
            for key, value in table.state_dict().items():
                out[f"table.{t}.{key}"] = value
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` bit-exactly.

        Only this process's owned tables are required; entries for
        unowned tables are ignored, so a model-parallel shard can load
        its share straight from a consolidated checkpoint.
        """
        for prefix, mlp in (("bottom", self.bottom), ("top", self.top)):
            sub = {
                k[len(prefix) + 1 :]: v
                for k, v in state.items()
                if k.startswith(f"{prefix}.")
            }
            mlp.load_state_dict(sub)
        expected_tables = set(self.table_ids)
        for t in expected_tables:
            prefix = f"table.{t}."
            sub = {k[len(prefix) :]: v for k, v in state.items() if k.startswith(prefix)}
            if not sub:
                raise KeyError(f"checkpoint has no state for owned table {t}")
            self.tables[t].load_state_dict(sub)

    # -- passes ------------------------------------------------------------------

    def embedding_forward(self, batch: Batch) -> dict[int, np.ndarray]:
        """Look up only this process's tables (model-parallel half)."""
        return {
            t: self.tables[t].forward(batch.indices[t], batch.offsets[t])
            for t in self.table_ids
        }

    def bottom_forward(self, batch: Batch) -> np.ndarray:
        """Bottom MLP on the (data-parallel) dense features.

        Split out so the hybrid-parallel runtime can overlap the forward
        embedding alltoall with exactly this compute window -- the only
        overlap available to the alltoall (paper Sect. VI-D).
        """
        with trace("mlp.gemm.fwd", rows=batch.dense.shape[0]):
            return self.bottom.forward(batch.dense)

    def top_forward(self, x_bottom: np.ndarray, emb_out: dict[int, np.ndarray]) -> np.ndarray:
        """Interaction + Top MLP, given all S embedding outputs."""
        missing = [t for t in range(self.cfg.num_tables) if t not in emb_out]
        if missing:
            raise ValueError(f"missing embedding outputs for tables {missing}")
        embs = [emb_out[t] for t in range(self.cfg.num_tables)]
        with trace("mlp.gemm.fwd", rows=x_bottom.shape[0]):
            r = self.interaction.forward(x_bottom, embs)
            logits = self.top.forward(r)
        self._logits = logits
        return logits

    def dense_forward(self, batch: Batch, emb_out: dict[int, np.ndarray]) -> np.ndarray:
        """Bottom MLP + interaction + Top MLP on (data-parallel) samples."""
        return self.top_forward(self.bottom_forward(batch), emb_out)

    def forward(self, batch: Batch) -> np.ndarray:
        """Full forward pass (single-process: owns all tables)."""
        self._batch = batch
        emb_out = self.embedding_forward(batch)
        return self.dense_forward(batch, emb_out)

    def infer(
        self,
        batch: Batch,
        bottom_outs: list[np.ndarray] | None = None,
        top_outs: list[np.ndarray] | None = None,
    ) -> np.ndarray:
        """Forward-only pass (inference/eval mode): returns the logits.

        Bit-identical to :meth:`forward` on the same batch, but stores
        *no* state anywhere -- ``_batch``, ``_logits``, MLP activations
        and the interaction's saved ``Z`` are all left untouched, so a
        serving path can interleave with a pending training backward.
        The optional ``*_outs`` buffer lists are forwarded to
        :meth:`MLP.infer` (the serving engine's warm path).
        """
        missing = [t for t in range(self.cfg.num_tables) if t not in self.tables]
        if missing:
            raise ValueError(
                f"inference needs all tables locally; missing {missing}"
            )
        emb_out = self.embedding_forward(batch)
        x_bottom = self.bottom.infer(batch.dense, outs=bottom_outs)
        embs = [emb_out[t] for t in range(self.cfg.num_tables)]
        r = self.interaction.infer(x_bottom, embs)
        return self.top.infer(r, outs=top_outs)

    def loss(self, batch: Batch, normalizer: float | None = None) -> float:
        logits = self.forward(batch)
        return self.loss_fn.forward(logits, batch.labels, normalizer=normalizer)

    def top_backward(self, dlogits: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Top MLP + interaction backward; returns (d bottom-output,
        per-table embedding-output gradients)."""
        with trace("mlp.gemm.bwd", rows=dlogits.shape[0]):
            dr = self.top.backward(dlogits)
            return self.interaction.backward(dr)

    def top_backward_segment(
        self, dy: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Backward through Top MLP layers ``[start, stop)`` only -- the
        issue-as-ready path walks the stack bucket by bucket so each
        bucket's weight gradients can fly while earlier layers compute."""
        with trace("mlp.gemm.bwd", rows=dy.shape[0]):
            return self.top.backward_segment(dy, start, stop)

    def bottom_backward_segment(
        self, dy: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Backward through Bottom MLP layers ``[start, stop)`` only."""
        with trace("mlp.gemm.bwd", rows=dy.shape[0]):
            return self.bottom.backward_segment(dy, start, stop)

    def interaction_backward(
        self, dr: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Interaction backward alone; composes with
        :meth:`top_backward_segment` to equal :meth:`top_backward`."""
        return self.interaction.backward(dr)

    def bottom_backward(self, ddense: np.ndarray) -> np.ndarray:
        """Bottom MLP backward (weight grads accumulate into parameters)."""
        with trace("mlp.gemm.bwd", rows=ddense.shape[0]):
            return self.bottom.backward(ddense)

    def dense_backward(self, dlogits: np.ndarray, batch: Batch) -> list[np.ndarray]:
        """Top MLP + interaction + Bottom MLP backward; returns the
        per-table gradients of the embedding *outputs* (to be routed to
        table owners in the distributed case)."""
        ddense, dembs = self.top_backward(dlogits)
        self.bottom_backward(ddense)
        return dembs

    def embedding_backward(self, demb: np.ndarray, table_id: int, batch: Batch) -> None:
        """Alg. 2 for one owned table; stores the sparse gradient."""
        table = self.tables[table_id]
        self.sparse_grads[table_id] = table.backward(
            demb, batch.indices[table_id], batch.offsets[table_id]
        )

    def backward(self) -> None:
        """Full backward of the last :meth:`loss` (single-process)."""
        if self._batch is None:
            raise RuntimeError("backward called before loss/forward")
        batch = self._batch
        dlogits = self.loss_fn.backward()
        dembs = self.dense_backward(dlogits, batch)
        self.sparse_grads.clear()
        for t in self.table_ids:
            self.embedding_backward(dembs[t], t, batch)

    def apply_updates(self, opt: SGD) -> None:
        """Dense step + sparse step for every owned table."""
        with trace("update.dense"):
            opt.step_dense(self.parameters())
        for t, grad in self.sparse_grads.items():
            with trace("update.sparse", rows=grad.nnz):
                opt.step_sparse(self.tables[t], grad)
        self.sparse_grads.clear()

    def train_step(self, batch: Batch, opt: SGD, normalizer: float | None = None) -> float:
        """One SGD iteration; returns the (normalised) loss.

        When the optimizer's sparse strategy is
        :class:`~repro.core.update.FusedBackwardUpdate` (and the
        optimizer uses the plain SGD sparse step), Alg. 2's sparse
        gradient is never materialised: the bag-level embedding-output
        gradients feed the table update directly, bit-identical to the
        materialising path.
        """
        strategy = getattr(opt, "strategy", None)
        fused = uses_fused_dispatch(opt)
        loss = self.loss(batch, normalizer=normalizer)
        if not fused:
            self.backward()
            self.apply_updates(opt)
            return loss
        dlogits = self.loss_fn.backward()
        dembs = self.dense_backward(dlogits, batch)
        self.sparse_grads.clear()
        with trace("update.dense"):
            opt.step_dense(self.parameters())
        for t in self.table_ids:
            with trace("update.sparse", rows=len(batch.indices[t])):
                strategy.apply_fused(
                    self.tables[t], dembs[t], batch.indices[t], batch.offsets[t], opt.lr
                )
        return loss

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities (sigmoid of the logits), shape (N,)."""
        return sigmoid(self.forward(batch)).reshape(-1)
