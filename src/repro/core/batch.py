"""The minibatch container shared by datasets, the model and the runtime."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Batch:
    """One DLRM minibatch.

    * ``dense``   -- (N, D) float32 continuous features,
    * ``indices`` -- per-table flat look-up indices (S arrays),
    * ``offsets`` -- per-table bag offsets, each of length N+1,
    * ``labels``  -- (N,) float32 in {0, 1}.
    """

    dense: np.ndarray
    indices: list[np.ndarray]
    offsets: list[np.ndarray]
    labels: np.ndarray

    def __post_init__(self) -> None:
        n = self.dense.shape[0]
        if len(self.indices) != len(self.offsets):
            raise ValueError("indices/offsets table count mismatch")
        for t, off in enumerate(self.offsets):
            if off.shape[0] != n + 1:
                raise ValueError(
                    f"table {t}: offsets must have N+1={n + 1} entries, got {off.shape[0]}"
                )
            if off[-1] != self.indices[t].shape[0]:
                raise ValueError(f"table {t}: offsets do not span the index array")
        if self.labels.shape[0] != n:
            raise ValueError("labels length != minibatch size")

    @property
    def size(self) -> int:
        return int(self.dense.shape[0])

    @property
    def num_tables(self) -> int:
        return len(self.indices)

    def slice(self, lo: int, hi: int) -> "Batch":
        """The sub-batch of samples [lo, hi) -- used to shard the dense
        (data-parallel) half of the hybrid-parallel iteration."""
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"invalid slice [{lo}, {hi}) of batch size {self.size}")
        indices, offsets = [], []
        for t in range(self.num_tables):
            off = self.offsets[t]
            start, end = off[lo], off[hi]
            indices.append(self.indices[t][start:end])
            offsets.append((off[lo : hi + 1] - start).copy())
        return Batch(
            dense=self.dense[lo:hi],
            indices=indices,
            offsets=offsets,
            labels=self.labels[lo:hi],
        )

    def shard(self, num_shards: int) -> list["Batch"]:
        """Equal shards over the minibatch (N must divide evenly)."""
        n = self.size
        if n % num_shards:
            raise ValueError(f"batch size {n} not divisible into {num_shards} shards")
        per = n // num_shards
        return [self.slice(r * per, (r + 1) * per) for r in range(num_shards)]
