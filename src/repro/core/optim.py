"""Optimizers: plain SGD, Split-SGD-BF16, and master-weight mixed precision.

DLRM trains with vanilla SGD; the paper's Sect. VII contribution is how
to run that SGD in BF16 without a separate FP32 master copy:

* :class:`SGD` -- FP32 baseline.  Dense parameters step in place; sparse
  embedding gradients go through a Sect. III-A update strategy.
* :class:`SplitSGD` -- Split-SGD-BF16.  Every dense parameter is split
  into (hi, lo) uint16 halves; the model's compute tensor holds the BF16
  ``hi`` widened to FP32, the optimizer keeps ``lo`` and performs a fully
  FP32-accurate update on the recombined value.  ``lo_bits=8`` reproduces
  the paper's FP24 (1-8-15) ablation, which Fig. 16 shows is *not*
  accurate enough.
* :class:`MasterWeightSGD` -- the classic mixed-precision scheme the
  paper argues against: a full FP32 master copy (3x weight storage), with
  BF16 weights re-quantised every step.  Kept as the capacity baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.bf16 import (
    bf16_to_fp32,
    combine_fp32,
    quantize_bf16,
    split_fp32,
    truncate_lo_bits,
)
from repro.core.embedding import EmbeddingBag, SparseGrad
from repro.core.param import Parameter
from repro.core.update import RaceFreeUpdate, UpdateStrategy


def _checked(
    state: dict[str, np.ndarray],
    key: str,
    shape: tuple[int, ...],
    dtype: type,
) -> np.ndarray:
    """A verified, owned copy of ``state[key]`` (checkpoint loading)."""
    if key not in state:
        raise KeyError(f"missing optimizer state entry {key!r}")
    value = np.asarray(state[key])
    if value.dtype != np.dtype(dtype):
        raise ValueError(f"{key}: dtype {value.dtype} != expected {np.dtype(dtype)}")
    if value.shape != tuple(shape):
        raise ValueError(f"{key}: shape {value.shape} != expected {tuple(shape)}")
    return value.copy()


class SGD:
    """Vanilla SGD: ``w -= lr * grad`` (dense) + strategy scatter (sparse).

    ``momentum > 0`` adds classic heavy-ball velocity on the *dense*
    parameters only (``v = mu*v + g; w -= lr*v``); embedding tables keep
    the paper's plain sparse SGD, whose update strategies assume a
    stateless scatter.
    """

    name = "sgd-fp32"

    def __init__(
        self,
        lr: float,
        strategy: UpdateStrategy | None = None,
        momentum: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.strategy = strategy or RaceFreeUpdate()
        self._velocity: dict[int, np.ndarray] = {}

    def register(self, params: list[Parameter]) -> None:
        """Allocate velocity buffers (a no-op without momentum)."""
        if self.momentum:
            for p in params:
                self._velocity[id(p)] = np.zeros(p.shape, dtype=np.float32)

    def step_dense(self, params: list[Parameter]) -> None:
        for p in params:
            if p.grad is None:
                continue
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros(p.shape, dtype=np.float32)
                    self._velocity[id(p)] = v
                v *= np.float32(self.momentum)
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad
            p.zero_grad()

    def step_sparse(self, table: EmbeddingBag, grad: SparseGrad) -> None:
        self.strategy.apply(table, grad, self.lr)

    def bytes_per_dense_param_step(self) -> int:
        """Traffic per parameter element (read w, read g, write w)."""
        return 12

    # -- checkpointing ------------------------------------------------------

    def state_dict(
        self,
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> dict[str, np.ndarray]:
        """Optimizer state as flat arrays, keyed by parameter *position*.

        ``params`` must be the same ordered list the optimizer was
        registered with (``model.parameters()`` is stable); ``tables``
        maps table id -> table for optimizers with per-table state.
        """
        state: dict[str, np.ndarray] = {"lr": np.float64(self.lr)}
        if self.momentum:
            state["momentum"] = np.float64(self.momentum)
            for i, p in enumerate(params):
                v = self._velocity.get(id(p))
                state[f"velocity.{i}"] = (
                    np.zeros(p.shape, dtype=np.float32) if v is None else v.copy()
                )
        return state

    def load_state_dict(
        self,
        state: dict[str, np.ndarray],
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> None:
        """Restore state saved by :meth:`state_dict`, bit-exactly."""
        self.lr = float(state["lr"])
        if self.momentum:
            if "momentum" not in state:
                raise KeyError("momentum optimizer loading a momentum-free state")
            self.momentum = float(state["momentum"])
            for i, p in enumerate(params):
                self._velocity[id(p)] = _checked(
                    state, f"velocity.{i}", p.shape, np.float32
                )


class SplitSGD(SGD):
    """Split-SGD-BF16 (paper Sect. VII).

    Call :meth:`register` once after model construction; from then on the
    parameters' ``value`` tensors always hold BF16 numbers (the hi half
    widened), while this optimizer owns the lo halves.  Sparse tables
    must be :class:`~repro.core.embedding.SplitEmbeddingBag`, which carry
    their own hi/lo storage.
    """

    def __init__(self, lr: float, strategy: UpdateStrategy | None = None, lo_bits: int = 16):
        super().__init__(lr, strategy)
        if not 0 <= lo_bits <= 16:
            raise ValueError(f"lo_bits must be in [0, 16], got {lo_bits}")
        self.lo_bits = lo_bits
        self.name = "split-sgd-bf16" if lo_bits == 16 else f"split-sgd-fp{16 + lo_bits}"
        self._lo: dict[int, np.ndarray] = {}

    def register(self, params: list[Parameter]) -> None:
        for p in params:
            hi, lo = split_fp32(p.value)
            self._lo[id(p)] = truncate_lo_bits(lo, self.lo_bits)
            p.value[...] = bf16_to_fp32(hi)

    def step_dense(self, params: list[Parameter]) -> None:
        for p in params:
            if p.grad is None:
                continue
            lo = self._lo.get(id(p))
            if lo is None:
                raise RuntimeError(
                    f"parameter {p.name or id(p)} not registered with SplitSGD"
                )
            hi, _ = split_fp32(p.value)  # value holds exactly the hi half
            full = combine_fp32(hi, lo)
            full -= self.lr * p.grad
            new_hi, new_lo = split_fp32(full)
            self._lo[id(p)] = truncate_lo_bits(new_lo, self.lo_bits)
            p.value[...] = bf16_to_fp32(new_hi)
            p.zero_grad()

    def master_value(self, p: Parameter) -> np.ndarray:
        """The implicit FP32 master weight of ``p`` (tests/inspection)."""
        lo = self._lo.get(id(p))
        if lo is None:
            raise RuntimeError("parameter not registered")
        hi, _ = split_fp32(p.value)
        return combine_fp32(hi, lo)

    def state_bytes(self, params: list[Parameter]) -> int:
        """Optimizer state: 2 bytes/element (the lo halves)."""
        return sum(p.size * 2 for p in params)

    def state_dict(
        self,
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> dict[str, np.ndarray]:
        state = super().state_dict(params, tables)
        for i, p in enumerate(params):
            lo = self._lo.get(id(p))
            if lo is None:
                raise RuntimeError(
                    f"parameter {p.name or i} not registered with SplitSGD"
                )
            state[f"lo.{i}"] = lo.copy()
        return state

    def load_state_dict(
        self,
        state: dict[str, np.ndarray],
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> None:
        super().load_state_dict(state, params, tables)
        for i, p in enumerate(params):
            self._lo[id(p)] = _checked(state, f"lo.{i}", p.shape, np.uint16)


class SparseAdagrad(SGD):
    """Adagrad with row-wise state for the embedding tables.

    DLRM's reference implementation offers Adagrad as the alternative to
    SGD for the sparse features; it is included here as the natural
    extension beyond the paper's vanilla-SGD evaluation.  Dense
    parameters keep per-element accumulators; embedding tables keep one
    accumulator *per row* (the standard row-wise sparse Adagrad), so the
    optimizer state for a table is M floats, not M*E.

    Only FP32 tables are supported: combining Adagrad state with the
    Split-BF16 storage is future work (the paper's Split-SGD argument
    applies to any optimizer whose update is computed in FP32, but the
    state layout needs its own design).
    """

    name = "sparse-adagrad"

    def __init__(self, lr: float, strategy: UpdateStrategy | None = None, eps: float = 1e-8):
        super().__init__(lr, strategy)
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps
        self._dense_state: dict[int, np.ndarray] = {}
        self._row_state: dict[int, np.ndarray] = {}

    def register(self, params: list[Parameter]) -> None:
        for p in params:
            self._dense_state[id(p)] = np.zeros(p.shape, dtype=np.float32)

    def step_dense(self, params: list[Parameter]) -> None:
        for p in params:
            if p.grad is None:
                continue
            acc = self._dense_state.get(id(p))
            if acc is None:
                raise RuntimeError("parameter not registered with SparseAdagrad")
            acc += p.grad * p.grad
            p.value -= self.lr * p.grad / (np.sqrt(acc) + self.eps)
            p.zero_grad()

    def step_sparse(self, table: EmbeddingBag, grad: SparseGrad) -> None:
        if table.storage != "fp32":
            raise ValueError(
                "SparseAdagrad supports FP32 tables only (see class docstring)"
            )
        acc = self._row_state.get(id(table))
        if acc is None:
            acc = np.zeros(table.rows, dtype=np.float32)
            self._row_state[id(table)] = acc
        uniq, agg = grad.aggregated()
        # Row-wise accumulator: mean squared gradient over the row.
        acc[uniq] += np.mean(agg * agg, axis=1)
        scale = self.lr / (np.sqrt(acc[uniq]) + self.eps)
        table.scatter_add_rows(uniq, -scale[:, None] * agg)

    def state_bytes(self, params: list[Parameter], tables: list[EmbeddingBag] = ()) -> int:
        dense = sum(p.size * 4 for p in params)
        sparse = sum(t.rows * 4 for t in tables)
        return dense + sparse

    def state_dict(
        self,
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"lr": np.float64(self.lr)}
        for i, p in enumerate(params):
            acc = self._dense_state.get(id(p))
            state[f"dense.{i}"] = (
                np.zeros(p.shape, dtype=np.float32) if acc is None else acc.copy()
            )
        for tid, table in (tables or {}).items():
            acc = self._row_state.get(id(table))
            state[f"row.{tid}"] = (
                np.zeros(table.rows, dtype=np.float32) if acc is None else acc.copy()
            )
        return state

    def load_state_dict(
        self,
        state: dict[str, np.ndarray],
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> None:
        self.lr = float(state["lr"])
        for i, p in enumerate(params):
            self._dense_state[id(p)] = _checked(state, f"dense.{i}", p.shape, np.float32)
        for tid, table in (tables or {}).items():
            self._row_state[id(table)] = _checked(
                state, f"row.{tid}", (table.rows,), np.float32
            )


class MasterWeightSGD(SGD):
    """Classic BF16 mixed precision with an FP32 master copy.

    Storage: 4 B master + 4 B (BF16-in-FP32 compute tensor) per element
    here; on real silicon 4 B + 2 B = 3x the BF16 model size, which for
    DLRM's hundreds-of-GB tables is "hundreds of Gigabytes more capacity"
    -- the overhead Split-SGD removes.
    """

    name = "master-weight-bf16"

    def __init__(self, lr: float, strategy: UpdateStrategy | None = None):
        super().__init__(lr, strategy)
        self._master: dict[int, np.ndarray] = {}

    def register(self, params: list[Parameter]) -> None:
        for p in params:
            self._master[id(p)] = p.value.astype(np.float32, copy=True)
            p.value[...] = quantize_bf16(p.value)

    def step_dense(self, params: list[Parameter]) -> None:
        for p in params:
            if p.grad is None:
                continue
            master = self._master.get(id(p))
            if master is None:
                raise RuntimeError("parameter not registered with MasterWeightSGD")
            master -= self.lr * p.grad
            p.value[...] = quantize_bf16(master)
            p.zero_grad()

    def state_bytes(self, params: list[Parameter]) -> int:
        return sum(p.size * 4 for p in params)

    def state_dict(
        self,
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> dict[str, np.ndarray]:
        state = super().state_dict(params, tables)
        for i, p in enumerate(params):
            master = self._master.get(id(p))
            if master is None:
                raise RuntimeError(
                    f"parameter {p.name or i} not registered with MasterWeightSGD"
                )
            state[f"master.{i}"] = master.copy()
        return state

    def load_state_dict(
        self,
        state: dict[str, np.ndarray],
        params: list[Parameter],
        tables: dict[int, EmbeddingBag] | None = None,
    ) -> None:
        super().load_state_dict(state, params, tables)
        for i, p in enumerate(params):
            self._master[id(p)] = _checked(state, f"master.{i}", p.shape, np.float32)
