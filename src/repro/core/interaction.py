"""Feature interaction operators (paper Sect. II).

The interaction combines the Bottom MLP output with the S embedding-bag
outputs -- S+1 vectors of length E per sample:

* :class:`CatInteraction` -- plain concatenation (the "simple" option).
* :class:`DotInteraction` -- the common self-dot-product: a batched
  ``Z @ Z^T`` per sample, keeping the strictly-lower triangle (pairwise
  dot products without self terms), concatenated after the dense vector.
  This is the batched-GEMM key kernel the paper calls out, and the reason
  the interaction is the point where model-parallel embeddings must be
  realigned with the data-parallel minibatch (the alltoall).
"""

from __future__ import annotations

import numpy as np


class CatInteraction:
    """Concatenate [dense, emb_1, ..., emb_S] along features."""

    def __init__(self, num_embeddings: int, dim: int):
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.out_features = (num_embeddings + 1) * dim

    def forward(self, dense: np.ndarray, embs: list[np.ndarray]) -> np.ndarray:
        self._n = dense.shape[0]
        if len(embs) != self.num_embeddings:
            raise ValueError(f"expected {self.num_embeddings} embedding outputs, got {len(embs)}")
        return np.concatenate([dense, *embs], axis=1)

    def infer(self, dense: np.ndarray, embs: list[np.ndarray]) -> np.ndarray:
        """Forward without backward state (trivially identical here)."""
        if len(embs) != self.num_embeddings:
            raise ValueError(f"expected {self.num_embeddings} embedding outputs, got {len(embs)}")
        return np.concatenate([dense, *embs], axis=1)

    def backward(self, dout: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        d = self.dim
        ddense = dout[:, :d]
        dembs = [
            dout[:, d * (i + 1) : d * (i + 2)] for i in range(self.num_embeddings)
        ]
        return np.ascontiguousarray(ddense), [np.ascontiguousarray(g) for g in dembs]


class DotInteraction:
    """Pairwise dot-product interaction (batched GEMM), DLRM default.

    Output per sample: ``[dense (E floats), z_i . z_j for i > j]`` over
    the V = S+1 stacked vectors -- ``E + V(V-1)/2`` features.
    """

    def __init__(self, num_embeddings: int, dim: int):
        self.num_embeddings = num_embeddings
        self.dim = dim
        v = num_embeddings + 1
        self.num_vectors = v
        self._tril = np.tril_indices(v, k=-1)
        self.out_features = dim + v * (v - 1) // 2
        self._z: np.ndarray | None = None

    def forward(self, dense: np.ndarray, embs: list[np.ndarray]) -> np.ndarray:
        if len(embs) != self.num_embeddings:
            raise ValueError(f"expected {self.num_embeddings} embedding outputs, got {len(embs)}")
        for i, e in enumerate(embs):
            if e.shape != dense.shape:
                raise ValueError(
                    f"embedding output {i} shape {e.shape} != dense {dense.shape}"
                )
        # Z[N, V, E]: the stacked feature vectors.
        z = np.stack([dense, *embs], axis=1).astype(np.float32, copy=False)
        self._z = z
        # Batched self-GEMM: P[N, V, V] = Z @ Z^T.
        p = np.matmul(z, z.transpose(0, 2, 1))
        flat = p[:, self._tril[0], self._tril[1]]
        return np.concatenate([dense, flat], axis=1)

    def infer(self, dense: np.ndarray, embs: list[np.ndarray]) -> np.ndarray:
        """Forward-only interaction: bit-identical to :meth:`forward` but
        leaves the saved ``Z`` (and hence any pending backward) untouched."""
        if len(embs) != self.num_embeddings:
            raise ValueError(f"expected {self.num_embeddings} embedding outputs, got {len(embs)}")
        for i, e in enumerate(embs):
            if e.shape != dense.shape:
                raise ValueError(
                    f"embedding output {i} shape {e.shape} != dense {dense.shape}"
                )
        z = np.stack([dense, *embs], axis=1).astype(np.float32, copy=False)
        p = np.matmul(z, z.transpose(0, 2, 1))
        flat = p[:, self._tril[0], self._tril[1]]
        return np.concatenate([dense, flat], axis=1)

    def backward(self, dout: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._z is None:
            raise RuntimeError("backward called before forward")
        z = self._z
        n, v, e = z.shape
        ddense_direct = dout[:, :e]
        dflat = dout[:, e:]
        # Scatter the triangle back into a symmetric dP: the gradient of
        # z_i . z_j w.r.t. Z flows through both (i, j) and (j, i).
        dp = np.zeros((n, v, v), dtype=np.float32)
        dp[:, self._tril[0], self._tril[1]] = dflat
        dz = np.matmul(dp + dp.transpose(0, 2, 1), z)
        ddense = dz[:, 0, :] + ddense_direct
        dembs = [np.ascontiguousarray(dz[:, i + 1, :]) for i in range(v - 1)]
        return np.ascontiguousarray(ddense), dembs


def make_interaction(kind: str, num_embeddings: int, dim: int):
    """Factory matching :attr:`DLRMConfig.interaction`."""
    if kind == "dot":
        return DotInteraction(num_embeddings, dim)
    if kind == "cat":
        return CatInteraction(num_embeddings, dim)
    raise ValueError(f"unknown interaction {kind!r}")
