"""Binary cross-entropy loss on logits (DLRM's training criterion).

The paper notes the loss "does not result into any performance
implications at all"; it matters here for numerics.  The implementation
is the numerically-stable logits form, and the normaliser is explicit:
distributed data-parallel ranks normalise their *local* sums by the
*global* minibatch so that summed gradients (the allreduce) reproduce the
single-socket gradient bit-for-bit -- see
:class:`repro.parallel.hybrid.DistributedDLRM`.
"""

from __future__ import annotations

import numpy as np

from repro.core.mlp import sigmoid


class BCEWithLogitsLoss:
    """Mean (or custom-normalised) binary cross-entropy over logits."""

    def __init__(self) -> None:
        self._logits: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._normalizer: float = 1.0

    def forward(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        normalizer: float | None = None,
    ) -> float:
        """Loss = sum_i bce(logit_i, y_i) / normalizer (default: N)."""
        z = np.asarray(logits, dtype=np.float32).reshape(-1)
        y = np.asarray(targets, dtype=np.float32).reshape(-1)
        if z.shape != y.shape:
            raise ValueError(f"logits/targets shape mismatch: {z.shape} vs {y.shape}")
        norm = float(z.size) if normalizer is None else float(normalizer)
        if norm <= 0:
            raise ValueError("normalizer must be positive")
        self._logits = z
        self._targets = y
        self._normalizer = norm
        # Stable: max(z, 0) - z*y + log(1 + exp(-|z|)).
        per_sample = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        return float(per_sample.sum() / norm)

    def backward(self) -> np.ndarray:
        """d(loss)/d(logits), shaped (N, 1) to feed the Top MLP."""
        if self._logits is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        dz = (sigmoid(self._logits) - self._targets) / np.float32(self._normalizer)
        return dz.reshape(-1, 1).astype(np.float32)
