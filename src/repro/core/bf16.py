"""Bit-accurate BFLOAT16 / split-FP32 emulation (paper Sect. VII).

BFLOAT16 aliases the upper 16 bits of an IEEE754 FP32 number: same 8-bit
exponent, mantissa cut from 24 (one implicit) to 8 bits.  The paper's
Split-SGD-BF16 exploits the aliasing: an FP32 weight tensor is stored as
two separate 16-bit tensors,

* ``hi`` -- the 16 MSBs, which *are* a valid BF16 number and are the only
  thing the forward/backward passes read, and
* ``lo`` -- the 16 LSBs, kept as optimizer state and only touched by the
  SGD update, which therefore runs at full FP32 accuracy.

Because ``hi || lo`` reconstructs the FP32 master weight bit-for-bit, no
separate master copy is needed -- the 3x capacity overhead of classic
FP16 mixed-precision training disappears.

This module emulates all of that on ``uint16``/``uint32`` views, plus the
two auxiliary formats the paper evaluates:

* round-to-nearest-even FP32 -> BF16 (the hardware conversion),
* the "FP24" (1-8-15) variant that keeps only 8 extra LSBs -- shown in
  Fig. 16 to be insufficient for DLRM, and
* an emulated ``vdpbf16ps`` dot product (BF16 inputs, FP32 accumulate),
  mirroring the paper's bit-accurate Cooper Lake emulation.
"""

from __future__ import annotations

import numpy as np


def _as_f32(x: np.ndarray) -> np.ndarray:
    a = np.asarray(x, dtype=np.float32)
    return a


def fp32_to_bf16_rne(x: np.ndarray) -> np.ndarray:
    """Round FP32 to BF16 (round-to-nearest-even), returned as uint16 bits.

    NaN payloads are preserved (quietened); +-inf round to themselves.
    """
    a = _as_f32(x)
    bits = a.view(np.uint32)
    nan_mask = np.isnan(a)
    # RNE: add 0x7FFF + LSB-of-result, then truncate.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    out = (rounded >> np.uint32(16)).astype(np.uint16)
    if nan_mask.any():
        # Keep NaN a NaN: set a mantissa bit explicitly.
        out = np.where(
            nan_mask, ((bits >> np.uint32(16)).astype(np.uint16) | np.uint16(0x0040)), out
        )
    return out


def bf16_to_fp32(h: np.ndarray) -> np.ndarray:
    """Widen BF16 bits (uint16) to FP32 exactly (zero-extend the mantissa)."""
    h = np.asarray(h, dtype=np.uint16)
    return (h.astype(np.uint32) << np.uint32(16)).view(np.float32)


def quantize_bf16(x: np.ndarray) -> np.ndarray:
    """FP32 -> BF16 (RNE) -> FP32: the value a BF16 datapath would see."""
    return bf16_to_fp32(fp32_to_bf16_rne(x))


def split_fp32(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split FP32 into (hi, lo) uint16 halves by *truncation*.

    The paper stores the 16 MSBs as the model weight ("a valid BFLOAT16
    number") and the 16 LSBs as optimizer state; note the split truncates
    rather than rounds, so reconstruction is exact.
    """
    bits = _as_f32(x).view(np.uint32)
    hi = (bits >> np.uint32(16)).astype(np.uint16)
    lo = (bits & np.uint32(0xFFFF)).astype(np.uint16)
    return hi, lo


def combine_fp32(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Reassemble FP32 from its two 16-bit halves, bit-exactly."""
    hi = np.asarray(hi, dtype=np.uint16)
    lo = np.asarray(lo, dtype=np.uint16)
    if hi.shape != lo.shape:
        raise ValueError(f"hi/lo shape mismatch: {hi.shape} vs {lo.shape}")
    bits = (hi.astype(np.uint32) << np.uint32(16)) | lo.astype(np.uint32)
    return bits.view(np.float32)


def truncate_lo_bits(lo: np.ndarray, keep_bits: int) -> np.ndarray:
    """Keep only the ``keep_bits`` MSBs of the low half (zero the rest).

    ``keep_bits=8`` yields the paper's FP24 (1-8-15) experiment: 16 MSBs
    plus 8 extra mantissa LSBs.  ``keep_bits=16`` is a no-op, ``0`` drops
    the low half entirely (pure BF16 weights).
    """
    if not 0 <= keep_bits <= 16:
        raise ValueError(f"keep_bits must be in [0, 16], got {keep_bits}")
    lo = np.asarray(lo, dtype=np.uint16)
    if keep_bits == 16:
        return lo.copy()
    mask = np.uint16(((1 << keep_bits) - 1) << (16 - keep_bits))
    return lo & mask


def bf16_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Emulated ``vdpbf16ps``: BF16 inputs, FP32 products and accumulation.

    Inputs are FP32 arrays; they are first rounded to BF16 (RNE), then
    multiplied exactly in FP32 (a product of two 8-bit mantissas fits FP32
    exactly) and accumulated in FP32 -- matching the instruction's
    numerics up to accumulation order.
    """
    aq = quantize_bf16(np.asarray(a, dtype=np.float32))
    bq = quantize_bf16(np.asarray(b, dtype=np.float32))
    return np.matmul(aq, bq)


def bf16_ulp(x: np.ndarray) -> np.ndarray:
    """The BF16 unit-in-last-place at each value's magnitude (for tests).

    Subnormals share the fixed spacing 2^-133 (min normal 2^-126 over the
    7 explicit mantissa bits).
    """
    a = np.abs(quantize_bf16(x)).astype(np.float64)
    expo = np.where(a == 0, 2.0**-126, a)
    ulp = 2.0 ** (np.floor(np.log2(expo)) - 7)
    return np.maximum(ulp, 2.0**-133).astype(np.float64)
