"""Dense parameter container shared by the MLP layers and optimizers."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable FP32 tensor with an accumulated gradient.

    The gradient convention follows the loss normalisation chosen by the
    model: ``grad`` holds d(loss)/d(value) and optimizers subtract
    ``lr * grad``.
    """

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.ascontiguousarray(value, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    @property
    def nbytes(self) -> int:
        return self.value.nbytes

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, g: np.ndarray) -> None:
        """Add ``g`` into the gradient (allocating on first use)."""
        if g.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {g.shape} does not match parameter {self.value.shape}"
            )
        if self.grad is None:
            self.grad = np.array(g, dtype=np.float32, copy=True)
        else:
            self.grad += g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"
