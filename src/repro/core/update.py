"""Sparse embedding update strategies (paper Sect. III-A, Algorithms 3-4).

The update pass ``W[I[i]] += alpha * dW[i]`` has a race on duplicate
indices when parallelised over the NS look-ups.  The paper evaluates four
resolutions:

* ``reference`` -- the naive PyTorch v1.4 CPU kernel (functionally fine,
  catastrophically slow: 99% of the unoptimised iteration),
* ``atomic``    -- FP atomic add built from integer ``XCHG`` loops,
* ``rtm``       -- Intel Restricted Transactional Memory sections, which
  admit SIMD FMAs inside the critical section,
* ``racefree``  -- Alg. 4: partition table *rows* over threads; every
  thread scans all indices, updating only rows it owns.  No atomics, no
  races, better locality -- but load imbalance if indices cluster.

All four apply the *same* arithmetic; in this simulator they share the
exact scatter-add of :meth:`EmbeddingBag.scatter_add_rows` and differ in
(a) how they traverse (the race-free strategy really partitions, so tests
can observe its thread ranges) and (b) the cost-model key used to time
them.  ``fused`` additionally folds Alg. 2's backward into the update
(the standalone 1.6x experiment of Sect. III-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.embedding import EmbeddingBag, SparseGrad
from repro.kernels.segment import bucket_by_row_ranges
from repro.kernels.threads import row_range_for_thread


class UpdateStrategy(ABC):
    """Applies a :class:`SparseGrad` to a table: ``W[i] -= lr * v``."""

    #: Key understood by :meth:`repro.hw.costmodel.CostModel.embedding_update_time`.
    cost_key: str = ""

    @abstractmethod
    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        """Mutate ``table`` in place."""

    @property
    def name(self) -> str:
        return self.cost_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ReferenceUpdate(UpdateStrategy):
    """The naive single-threaded framework kernel (row-at-a-time)."""

    cost_key = "reference"

    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        table.scatter_add_rows(grad.indices, -np.float32(lr) * grad.values)


class AtomicXchgUpdate(UpdateStrategy):
    """FP atomic adds via integer XCHG (Sect. III-A option 1)."""

    cost_key = "atomic"

    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        table.scatter_add_rows(grad.indices, -np.float32(lr) * grad.values)


class RTMUpdate(UpdateStrategy):
    """Transactional-memory critical sections (Sect. III-A option 2)."""

    cost_key = "rtm"

    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        table.scatter_add_rows(grad.indices, -np.float32(lr) * grad.values)


class RaceFreeUpdate(UpdateStrategy):
    """Alg. 4: row-range partitioning over ``threads`` workers.

    Single pass: one ``searchsorted`` buckets every index into its
    owning thread's row range and one ``bincount`` yields the per-thread
    work counts that feed the cost model's imbalance term -- replacing
    the ``threads`` full-array mask scans of the seed implementation
    (kept as :meth:`apply_reference`, the bit-identity oracle).  Because
    the row ranges are disjoint, the partitioned update equals one
    direct scatter-add, which runs through the sort-based fold kernel.
    """

    cost_key = "racefree"

    def __init__(self, threads: int = 28):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        #: Per-thread update counts of the last apply() (observability).
        self.last_thread_counts: np.ndarray | None = None

    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        self.last_thread_counts = bucket_by_row_ranges(
            grad.indices, table.rows, self.threads
        )
        if grad.nnz:
            table.scatter_add_rows(grad.indices, -np.float32(lr) * grad.values)

    def apply_reference(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        """The seed's formulation: per-thread mask scans + ``np.add.at``."""
        deltas = -np.float32(lr) * grad.values
        counts = np.zeros(self.threads, dtype=np.int64)
        for tid in range(self.threads):
            lo, hi = row_range_for_thread(table.rows, tid, self.threads)
            mask = (grad.indices >= lo) & (grad.indices < hi)
            counts[tid] = int(mask.sum())
            if counts[tid]:
                table.scatter_add_rows_reference(grad.indices[mask], deltas[mask])
        self.last_thread_counts = counts


class FusedBackwardUpdate(UpdateStrategy):
    """Backward+update fused into one pass (standalone 1.6x experiment).

    :meth:`apply_fused` is the real fusion: given the *bag-level* output
    gradient it applies every per-lookup delta by reading straight from
    the small ``(N, E)`` gradient array -- Alg. 2's ``np.repeat``
    materialisation of ``dW`` never happens, and neither does the
    separate update pass over it.  Bit-identical to
    ``EmbeddingBag.backward`` followed by the race-free update.
    :meth:`apply` keeps the plain :class:`SparseGrad` interface for
    callers that already materialised the gradient (e.g. the
    distributed runtime, which ships gradients between ranks).
    """

    cost_key = "fused"

    def __init__(self, threads: int = 28):
        self._inner = RaceFreeUpdate(threads)

    @property
    def threads(self) -> int:
        return self._inner.threads

    @property
    def last_thread_counts(self) -> np.ndarray | None:
        return self._inner.last_thread_counts

    def apply(self, table: EmbeddingBag, grad: SparseGrad, lr: float) -> None:
        self._inner.apply(table, grad, lr)

    def apply_fused(
        self,
        table: EmbeddingBag,
        grad_out: np.ndarray,
        indices: np.ndarray,
        offsets: np.ndarray,
        lr: float,
    ) -> None:
        """Alg. 2 + Alg. 3/4 in one pass over the lookups of one table."""
        indices, offsets = table._check_lookup(indices, offsets)
        lengths = np.diff(offsets)
        # The fold gathers bag rows with clip-mode take; reject a bag
        # count mismatch loudly instead of silently reusing the last row.
        if grad_out.shape[0] != lengths.shape[0]:
            raise ValueError(
                f"grad_out has {grad_out.shape[0]} rows for "
                f"{lengths.shape[0]} bags"
            )
        bag_ids = np.repeat(np.arange(offsets.shape[0] - 1), lengths)
        scaled = -np.float32(lr) * np.ascontiguousarray(grad_out, dtype=np.float32)
        self._inner.last_thread_counts = bucket_by_row_ranges(
            indices, table.rows, self._inner.threads
        )
        if indices.size:
            table.apply_bag_updates(scaled, bag_ids, indices)


def uses_fused_dispatch(opt) -> bool:
    """True when training loops may feed bag-level gradients straight to
    :meth:`FusedBackwardUpdate.apply_fused` instead of materialising
    Alg. 2's row-per-lookup gradient.

    The single gate shared by ``DLRM.train_step`` and the distributed
    runtime (they must dispatch identically or distributed ==
    single-socket bit-exactness breaks): the optimizer's strategy is the
    fused one *and* its sparse step is the plain SGD scatter (a subclass
    overriding ``step_sparse`` needs the materialised :class:`SparseGrad`).
    """
    from repro.core.optim import SGD  # lazy: optim imports this module

    return isinstance(getattr(opt, "strategy", None), FusedBackwardUpdate) and (
        type(opt).step_sparse is SGD.step_sparse
    )


STRATEGIES: dict[str, type[UpdateStrategy]] = {
    "reference": ReferenceUpdate,
    "atomic": AtomicXchgUpdate,
    "rtm": RTMUpdate,
    "racefree": RaceFreeUpdate,
    "fused": FusedBackwardUpdate,
}


def make_strategy(name: str, threads: int = 28) -> UpdateStrategy:
    """Instantiate an update strategy by cost key.

    Delegates to the :data:`repro.train.registry.UPDATE_STRATEGIES`
    registry (imported lazily -- ``repro.train`` sits above this
    module), so strategies registered by downstream code are reachable
    through this legacy entry point too.  Entries added to the public
    :data:`STRATEGIES` dict after the registry snapshot are picked up
    on first use, keeping the old extension point alive.
    """
    from repro.train.registry import UPDATE_STRATEGIES, _strategy_factory

    if name not in UPDATE_STRATEGIES and name in STRATEGIES:
        UPDATE_STRATEGIES.register(name, _strategy_factory(STRATEGIES[name]))
    return UPDATE_STRATEGIES.create(name, threads=threads)
