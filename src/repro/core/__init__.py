"""The paper's primary contribution: optimized DLRM training operators.

Public surface: model configurations (Table I/II), the DLRM model and its
operators (EmbeddingBag, MLP, interactions, BCE loss), the sparse-update
strategies of Sect. III-A, the optimizers incl. Split-SGD-BF16
(Sect. VII), bit-accurate BF16 emulation, and evaluation metrics.
"""

from repro.core.batch import Batch
from repro.core.bf16 import (
    bf16_dot,
    bf16_to_fp32,
    combine_fp32,
    fp32_to_bf16_rne,
    quantize_bf16,
    split_fp32,
    truncate_lo_bits,
)
from repro.core.config import (
    CONFIGS,
    CRITEO_TB_CARDINALITIES,
    DLRMConfig,
    LARGE,
    MLPERF,
    SMALL,
    get_config,
    table_one,
    table_two,
)
from repro.core.embedding import EmbeddingBag, SparseGrad, SplitEmbeddingBag, segment_sum
from repro.core.interaction import CatInteraction, DotInteraction, make_interaction
from repro.core.loss import BCEWithLogitsLoss
from repro.core.metrics import accuracy, log_loss, roc_auc
from repro.core.mlp import MLP, FullyConnected, relu, sigmoid
from repro.core.model import DLRM
from repro.core.optim import SGD, MasterWeightSGD, SparseAdagrad, SplitSGD
from repro.core.schedule import WarmupDecaySchedule
from repro.core.param import Parameter
from repro.core.update import (
    AtomicXchgUpdate,
    FusedBackwardUpdate,
    RTMUpdate,
    RaceFreeUpdate,
    ReferenceUpdate,
    UpdateStrategy,
    make_strategy,
)

__all__ = [
    "Batch",
    "bf16_dot",
    "bf16_to_fp32",
    "combine_fp32",
    "fp32_to_bf16_rne",
    "quantize_bf16",
    "split_fp32",
    "truncate_lo_bits",
    "CONFIGS",
    "CRITEO_TB_CARDINALITIES",
    "DLRMConfig",
    "LARGE",
    "MLPERF",
    "SMALL",
    "get_config",
    "table_one",
    "table_two",
    "EmbeddingBag",
    "SparseGrad",
    "SplitEmbeddingBag",
    "segment_sum",
    "CatInteraction",
    "DotInteraction",
    "make_interaction",
    "BCEWithLogitsLoss",
    "accuracy",
    "log_loss",
    "roc_auc",
    "MLP",
    "FullyConnected",
    "relu",
    "sigmoid",
    "DLRM",
    "SGD",
    "MasterWeightSGD",
    "SparseAdagrad",
    "SplitSGD",
    "WarmupDecaySchedule",
    "Parameter",
    "AtomicXchgUpdate",
    "FusedBackwardUpdate",
    "RTMUpdate",
    "RaceFreeUpdate",
    "ReferenceUpdate",
    "UpdateStrategy",
    "make_strategy",
]
