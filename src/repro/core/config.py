"""DLRM model configurations (paper Table I) and their derived
communication characteristics (paper Table II, Eqs. 1 and 2).

Three configurations are used throughout the paper:

* **Small** -- the model problem from the DLRM release paper: 8 uniform
  1M-row tables, E=64, ~50 look-ups per table.
* **Large** -- Small scaled up in every dimension for scale-out runs:
  64 six-million-row tables, E=256, deep 4096-wide top MLP.
* **MLPerf** -- the MLPerf recommendation benchmark on the Criteo
  Terabyte dataset: 26 tables with the real categorical cardinalities
  (capped at 40M rows), E=128, one look-up per table.

Note on the MLPerf top MLP: Table I prints "512-512-256-1", but Table
II's 9.0 MB allreduce volume is only consistent with the official MLPerf
DLRM top MLP **1024-1024-512-256-1** (Eq. 1 gives ~9.04 MiB with it, vs.
~3.1 MiB with the printed stack).  We implement the official topology and
record the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Criteo Terabyte categorical cardinalities used by MLPerf DLRM
#: (hash-capped at 40M rows; sum ~187.8M rows -> ~96 GiB at E=128 FP32,
#: the "98 GB" of Table II).
CRITEO_TB_CARDINALITIES: tuple[int, ...] = (
    39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63,
    38532951, 2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14,
    39979771, 25641295, 39664984, 585935, 12972, 108, 36,
)

FP32_BYTES = 4


@dataclass(frozen=True)
class DLRMConfig:
    """One column of paper Table I, plus everything derivable from it."""

    name: str
    #: Single-socket minibatch N.
    minibatch: int
    #: Global minibatch for strong scaling (GN).
    global_minibatch: int
    #: Local (per-rank) minibatch for weak scaling (LN).
    local_minibatch: int
    #: Average look-ups per table (P).
    lookups_per_table: int
    #: Embedding dimension (E).
    embedding_dim: int
    #: Rows per table (M), one entry per table; len == S.
    table_rows: tuple[int, ...]
    #: Number of dense input features (length of the Bottom MLP input).
    dense_features: int
    #: Output sizes of the Bottom MLP layers; the last must equal E.
    bottom_mlp: tuple[int, ...]
    #: Output sizes of the Top MLP layers; the last must be 1 (the logit).
    top_mlp: tuple[int, ...]
    #: Interaction operator: "dot" (default DLRM) or "cat".
    interaction: str = "dot"

    def __post_init__(self) -> None:
        if not self.table_rows:
            raise ValueError("need at least one embedding table")
        if any(m <= 0 for m in self.table_rows):
            raise ValueError("table rows must be positive")
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ValueError(
                "Bottom MLP must end at the embedding dimension so its output "
                f"can be interacted with the tables (got {self.bottom_mlp[-1]} "
                f"vs E={self.embedding_dim})"
            )
        if self.top_mlp[-1] != 1:
            raise ValueError("Top MLP must end with a single logit")
        if self.interaction not in ("dot", "cat"):
            raise ValueError(f"interaction must be 'dot' or 'cat', got {self.interaction!r}")

    # -- basic shape quantities ------------------------------------------------

    @property
    def num_tables(self) -> int:
        """S, the number of sparse features."""
        return len(self.table_rows)

    @property
    def num_vectors(self) -> int:
        """Vectors entering the interaction: S tables + the bottom output."""
        return self.num_tables + 1

    @property
    def interaction_dim(self) -> int:
        """Width of the Top MLP input.

        Dot interaction: the bottom output (E) concatenated with the
        strictly-lower-triangular pairwise dot products of the S+1
        vectors.  Cat interaction: plain concatenation.
        """
        v = self.num_vectors
        if self.interaction == "dot":
            return self.embedding_dim + v * (v - 1) // 2
        return v * self.embedding_dim

    def bottom_layer_shapes(self) -> list[tuple[int, int]]:
        """(in, out) per Bottom MLP layer."""
        dims = (self.dense_features, *self.bottom_mlp)
        return list(zip(dims[:-1], dims[1:]))

    def top_layer_shapes(self) -> list[tuple[int, int]]:
        """(in, out) per Top MLP layer."""
        dims = (self.interaction_dim, *self.top_mlp)
        return list(zip(dims[:-1], dims[1:]))

    def mlp_layer_shapes(self) -> list[tuple[int, int]]:
        return self.bottom_layer_shapes() + self.top_layer_shapes()

    # -- Table II quantities ------------------------------------------------------

    @property
    def num_mlp_parameters(self) -> int:
        """All dense parameters: sum of fi*fo + fo over every MLP layer."""
        return sum(fi * fo + fo for fi, fo in self.mlp_layer_shapes())

    @property
    def allreduce_bytes(self) -> int:
        """Paper Eq. 1: allreduce volume per rank = the full MLP gradient.

        Independent of rank count and minibatch -- the strong-scaling
        bottleneck.
        """
        return self.num_mlp_parameters * FP32_BYTES

    def alltoall_bytes(self, global_minibatch: int | None = None) -> int:
        """Paper Eq. 2: total alltoall volume = S * N * E elements.

        Proportional to the *global* minibatch: constant under strong
        scaling, growing linearly under weak scaling.
        """
        n = self.global_minibatch if global_minibatch is None else global_minibatch
        return self.num_tables * n * self.embedding_dim * FP32_BYTES

    @property
    def embedding_bytes(self) -> int:
        """FP32 capacity of all embedding tables."""
        return sum(self.table_rows) * self.embedding_dim * FP32_BYTES

    @property
    def total_lookups(self) -> int:
        """Embedding rows read per single-socket iteration: S * N * P."""
        return self.num_tables * self.minibatch * self.lookups_per_table

    def required_memory_bytes(self) -> int:
        """Single-socket working-set estimate: tables + gradients of the
        touched rows + MLP weights/grads + activations.

        With the paper's ~17% overhead on top of the raw tables this
        reproduces "the large config ... needs minimum of 450GB DRAM".
        """
        act = self.minibatch * (self.interaction_dim + sum(self.bottom_mlp) + sum(self.top_mlp))
        grads = self.total_lookups * self.embedding_dim
        return int(
            self.embedding_bytes * 1.17
            + 3 * self.num_mlp_parameters * FP32_BYTES
            + (act + grads) * FP32_BYTES
        )

    def min_sockets(self, socket_capacity_bytes: float) -> int:
        """Smallest power-of-two socket count whose aggregate DRAM holds
        the working set (the paper scales in power-of-two rank steps)."""
        need = self.required_memory_bytes()
        r = 1
        while r * socket_capacity_bytes < need:
            r *= 2
            if r > self.max_ranks:
                raise ValueError(
                    f"{self.name}: does not fit even at the maximum rank count"
                )
        return r

    @property
    def max_ranks(self) -> int:
        """Embedding tables are distributed whole -> at most S ranks."""
        return self.num_tables

    # -- derived configs ---------------------------------------------------------------

    def with_minibatch(self, n: int) -> "DLRMConfig":
        if n <= 0:
            raise ValueError("minibatch must be positive")
        return replace(self, minibatch=n)

    def scaled_down(self, rows_cap: int = 2000, minibatch: int = 64) -> "DLRMConfig":
        """A structurally identical config small enough for unit tests:
        same table count, MLP depths and interaction; capped rows and
        minibatch."""
        return replace(
            self,
            name=f"{self.name}-scaled",
            minibatch=minibatch,
            global_minibatch=minibatch * 4,
            local_minibatch=minibatch,
            table_rows=tuple(min(m, rows_cap) for m in self.table_rows),
        )


# --- Paper Table I presets ------------------------------------------------

#: The DLRM release-paper model problem.
SMALL = DLRMConfig(
    name="small",
    minibatch=2048,
    global_minibatch=8192,
    local_minibatch=1024,
    lookups_per_table=50,
    embedding_dim=64,
    table_rows=(1_000_000,) * 8,
    dense_features=512,
    bottom_mlp=(512, 64),
    top_mlp=(1024, 1024, 1024, 1),
)

#: Small scaled in every aspect for scale-out runs.
LARGE = DLRMConfig(
    name="large",
    minibatch=2048,  # not runnable on one socket (Table I leaves it blank)
    global_minibatch=16384,
    local_minibatch=512,
    lookups_per_table=100,
    embedding_dim=256,
    table_rows=(6_000_000,) * 64,
    dense_features=2048,
    bottom_mlp=(2048,) * 7 + (256,),
    top_mlp=(4096,) * 15 + (1,),
)

#: The MLPerf recommendation benchmark (Criteo Terabyte).
MLPERF = DLRMConfig(
    name="mlperf",
    minibatch=2048,
    global_minibatch=16384,
    local_minibatch=2048,
    lookups_per_table=1,
    embedding_dim=128,
    table_rows=CRITEO_TB_CARDINALITIES,
    dense_features=13,
    bottom_mlp=(512, 256, 128),
    top_mlp=(1024, 1024, 512, 256, 1),
)

CONFIGS: dict[str, DLRMConfig] = {c.name: c for c in (SMALL, LARGE, MLPERF)}


def get_config(name: str) -> DLRMConfig:
    """Look up a paper config by name ('small', 'large', 'mlperf')."""
    try:
        return CONFIGS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown config {name!r}; have {sorted(CONFIGS)}") from None


def table_one() -> list[dict[str, object]]:
    """Rows of paper Table I as dictionaries (one per config)."""
    rows = []
    for cfg in CONFIGS.values():
        rows.append(
            {
                "config": cfg.name,
                "minibatch": cfg.minibatch,
                "global_minibatch_strong": cfg.global_minibatch,
                "local_minibatch_weak": cfg.local_minibatch,
                "lookups_per_table": cfg.lookups_per_table,
                "num_tables": cfg.num_tables,
                "embedding_dim": cfg.embedding_dim,
                "max_rows_per_table": max(cfg.table_rows),
                "bottom_mlp": "-".join(map(str, cfg.bottom_mlp)),
                "top_mlp": "-".join(map(str, cfg.top_mlp)),
            }
        )
    return rows


def table_two(socket_capacity_bytes: float = 192e9) -> list[dict[str, object]]:
    """Rows of paper Table II: distributed-run characteristics."""
    rows = []
    for cfg in CONFIGS.values():
        rows.append(
            {
                "config": cfg.name,
                "embedding_capacity_gb": cfg.embedding_bytes / 2**30,
                "min_sockets": cfg.min_sockets(socket_capacity_bytes),
                "max_ranks": cfg.max_ranks,
                "allreduce_mb": cfg.allreduce_bytes / 2**20,
                "alltoall_strong_mb": cfg.alltoall_bytes() / 2**20,
            }
        )
    return rows
