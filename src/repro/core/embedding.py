"""EmbeddingBag: multi-hot embedding look-up (paper Algorithms 1-3).

The sparse half of DLRM.  A table ``W[M, E]`` is read with a flat index
vector ``I[NS]`` segmented into ``N`` bags by ``O[N+1]`` offsets:

* forward  (Alg. 1): ``Y[n] = sum_{s in bag n} W[I[s]]``
* backward (Alg. 2): ``dW[s] = dY[n]`` for every s in bag n -- a *sparse*
  gradient carried as (indices, values) pairs,
* update   (Alg. 3): ``W[I[s]] += alpha * dW[s]`` -- the racy scatter that
  Sect. III-A's four strategies implement (see :mod:`repro.core.update`).

Two storage formats are supported: plain FP32, and the Split-BF16 format
of Sect. VII where the model half (``hi``) is a valid BF16 tensor and the
low half lives with the optimizer.  The forward/backward passes of a
split table read only ``hi`` -- the 2x bandwidth saving the paper claims
for 66% of the training passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bf16 import bf16_to_fp32, combine_fp32, split_fp32, truncate_lo_bits
from repro.obs.tracer import trace
from repro.kernels.segment import (
    aggregate_bag_duplicates,
    aggregate_duplicates,
    scatter_add_bags,
    scatter_add_exact,
    segment_sum_ragged,
)


@dataclass
class SparseGrad:
    """Gradient of one EmbeddingBag: row ``indices[i]`` receives ``values[i]``.

    Duplicate indices are legal and *must* accumulate -- that is exactly
    the race the paper's update strategies are about.
    """

    indices: np.ndarray  # (NS,) int64
    values: np.ndarray  # (NS, E) float32

    def __post_init__(self) -> None:
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.values = np.ascontiguousarray(self.values, dtype=np.float32)
        if self.indices.ndim != 1 or self.values.ndim != 2:
            raise ValueError("SparseGrad needs 1-D indices and 2-D values")
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"indices/values length mismatch: {self.indices.shape[0]} "
                f"vs {self.values.shape[0]}"
            )

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def aggregated(self) -> tuple[np.ndarray, np.ndarray]:
        """(unique_indices, summed_values): duplicates folded together.

        Runs the sort-based segment kernel; bit-identical to the naive
        ``np.unique`` + ``np.add.at`` formulation it replaced.
        """
        return aggregate_duplicates(self.indices, self.values)

    def scaled(self, factor: float) -> "SparseGrad":
        return SparseGrad(self.indices, self.values * np.float32(factor))


def segment_sum(rows: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum ``rows`` into segments delimited by ``offsets`` (N+1 entries).

    Validates the segment structure, then runs the length-bucketed
    kernel of :mod:`repro.kernels.segment` -- bit-identical to the
    unbuffered scatter-add it replaced (the NumPy analogue of Alg. 1's
    inner loop).  Empty bags yield zero rows.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-D array of N+1 entries")
    lengths = np.diff(offsets)
    if (lengths < 0).any():
        raise ValueError("offsets must be non-decreasing")
    if offsets[0] != 0 or offsets[-1] != rows.shape[0]:
        raise ValueError("offsets must span exactly the rows array")
    return segment_sum_ragged(rows, offsets)


class EmbeddingBag:
    """One embedding table with sum pooling (FP32 storage)."""

    storage = "fp32"

    #: Optional callable fed every forward pass's flat index vector.
    #: Installed by :meth:`repro.tiering.freqstats.FreqStats.attach` to
    #: stream row-access frequencies; ``None`` costs one attribute test.
    freq_hook = None

    def __init__(
        self,
        rows: int,
        dim: int,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
    ):
        if rows <= 0 or dim <= 0:
            raise ValueError("rows and dim must be positive")
        self.rows = int(rows)
        self.dim = int(dim)
        if weight is not None:
            w = np.ascontiguousarray(weight, dtype=np.float32)
            if w.shape != (rows, dim):
                raise ValueError(f"weight must be ({rows}, {dim}), got {w.shape}")
        else:
            rng = rng or np.random.default_rng()
            bound = np.sqrt(1.0 / rows)
            w = rng.uniform(-bound, bound, size=(rows, dim)).astype(np.float32)
        self._init_storage(w)

    # -- storage layer (overridden by SplitEmbeddingBag) ----------------------

    def _init_storage(self, w: np.ndarray) -> None:
        self.weight = w

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Read rows in compute precision (FP32 here; BF16 when split).

        Gathers through ``np.take(..., out=..., mode="clip")``: bitwise
        the fancy-indexing result, but on NumPy's no-buffering fast path
        -- faster, and it releases the GIL so parallel ranks' lookups
        overlap (plain advanced indexing serialises them).  The range
        check keeps fancy indexing's loud out-of-range failure (clip
        mode would silently read the last row).
        """
        indices = self._check_indices(indices)
        out = np.empty((indices.shape[0], self.dim), dtype=np.float32)
        return np.take(self.weight, indices, axis=0, out=out, mode="clip")

    def dense_weight(self) -> np.ndarray:
        """The full table as the compute pass sees it (tests/inspection)."""
        return self.weight

    def scatter_add_rows(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """``W[indices] += deltas`` with duplicate indices accumulating.

        This is the numerically-exact effect every update strategy of
        Sect. III-A must produce (atomics, RTM and the race-free
        partitioning only change *how* concurrently it happens).  Runs
        the sort-based fold kernel, bit-identical to
        :meth:`scatter_add_rows_reference`.
        """
        scatter_add_exact(self.weight, np.asarray(indices, dtype=np.int64), deltas)

    def scatter_add_rows_reference(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """The seed's naive formulation (unbuffered ``np.add.at``); kept
        as the bit-identity oracle for tests and ``bench_hotpath``."""
        np.add.at(self.weight, np.asarray(indices, dtype=np.int64), deltas)

    def apply_bag_updates(
        self, bag_grads: np.ndarray, bag_ids: np.ndarray, indices: np.ndarray
    ) -> None:
        """``W[indices[i]] += bag_grads[bag_ids[i]]`` without expansion.

        The fused backward+update entry point: per-lookup deltas are
        read from the small per-bag gradient array instead of a
        ``np.repeat``-materialised ``dW``.  Bit-identical to
        ``backward()`` followed by :meth:`scatter_add_rows` on the
        (pre-scaled) gradient.
        """
        scatter_add_bags(
            self.weight, np.asarray(indices, dtype=np.int64), bag_grads, bag_ids
        )

    def capacity_bytes(self) -> int:
        """Model + optimizer-state bytes held for this table."""
        return self.rows * self.dim * 4

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of the table's storage tensors (FP32: one weight array)."""
        return {"weight": self.weight.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore storage saved by :meth:`state_dict`, bit-exactly."""
        self._load_array(state, "weight", self.weight, np.float32)

    def _load_array(
        self,
        state: dict[str, np.ndarray],
        key: str,
        dst: np.ndarray,
        dtype: type,
    ) -> None:
        if key not in state:
            raise KeyError(f"missing state entry {key!r}")
        value = np.asarray(state[key])
        if value.dtype != np.dtype(dtype):
            raise ValueError(
                f"{key}: dtype {value.dtype} != expected {np.dtype(dtype)}"
            )
        if value.shape != dst.shape:
            raise ValueError(f"{key}: shape {value.shape} != expected {dst.shape}")
        dst[...] = value

    # -- compute layer -----------------------------------------------------------

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("embedding indices must be a flat 1-D vector")
        if indices.size and (indices.min() < 0 or indices.max() >= self.rows):
            raise IndexError("embedding indices out of range")
        return indices

    def _check_lookup(self, indices: np.ndarray, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._check_indices(indices), np.asarray(offsets, dtype=np.int64)

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Alg. 1: ``Y[N, E]`` with ``Y[n] = sum over bag n of W[I[s]]``."""
        indices, offsets = self._check_lookup(indices, offsets)
        if self.freq_hook is not None:
            self.freq_hook(indices)
        with trace("embedding.gather", rows=indices.shape[0]):
            return segment_sum(self.gather(indices), offsets)

    def backward(
        self, grad_out: np.ndarray, indices: np.ndarray, offsets: np.ndarray
    ) -> SparseGrad:
        """Alg. 2: each looked-up row receives its bag's output gradient.

        The row-per-lookup expansion gathers through ``np.take(out=)``
        instead of ``np.repeat``: only the small ``(NS,)`` bag-id vector
        is repeated, the ``(NS, E)`` payload is one GIL-releasing gather
        of the same rows -- bitwise the repeated array.
        """
        indices, offsets = self._check_lookup(indices, offsets)
        grad_out = np.ascontiguousarray(grad_out, dtype=np.float32)
        lengths = np.diff(offsets)
        # Keep the loud failure the np.repeat spelling had: a clip-mode
        # gather would silently reuse grad_out's last row instead.
        if grad_out.shape[0] != lengths.shape[0]:
            raise ValueError(
                f"grad_out has {grad_out.shape[0]} rows for "
                f"{lengths.shape[0]} bags"
            )
        bag_ids = np.repeat(np.arange(lengths.shape[0]), lengths)
        values = np.empty((indices.shape[0], self.dim), dtype=np.float32)
        np.take(grad_out, bag_ids, axis=0, out=values, mode="clip")
        return SparseGrad(indices, values)


class SplitEmbeddingBag(EmbeddingBag):
    """Split-BF16 storage (paper Sect. VII).

    ``hi`` (the BF16 half) is the model tensor read by forward/backward;
    ``lo`` is optimizer state.  ``lo_bits < 16`` emulates the FP24
    experiment that keeps only 8 extra mantissa bits.
    """

    storage = "split_bf16"

    def __init__(
        self,
        rows: int,
        dim: int,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
        lo_bits: int = 16,
    ):
        if not 0 <= lo_bits <= 16:
            raise ValueError(f"lo_bits must be in [0, 16], got {lo_bits}")
        self.lo_bits = lo_bits
        super().__init__(rows, dim, rng=rng, weight=weight)

    def _init_storage(self, w: np.ndarray) -> None:
        hi, lo = split_fp32(w)
        self.hi = hi
        self.lo = truncate_lo_bits(lo, self.lo_bits)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        # Forward/backward read only the BF16 half: 2x less bandwidth.
        # Same GIL-releasing take-gather (and range check) as FP32.
        indices = self._check_indices(indices)
        hi = np.empty((indices.shape[0], self.dim), dtype=np.uint16)
        return bf16_to_fp32(np.take(self.hi, indices, axis=0, out=hi, mode="clip"))

    def dense_weight(self) -> np.ndarray:
        return bf16_to_fp32(self.hi)

    def master_weight(self) -> np.ndarray:
        """The implicit FP32 master: hi||lo, reconstructed exactly."""
        return combine_fp32(self.hi, self.lo)

    def scatter_add_rows(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        # Aggregate duplicates first, then run the update at full FP32
        # accuracy on the reconstructed rows (the Split-SGD trick).
        uniq, agg = aggregate_duplicates(np.asarray(indices, dtype=np.int64), deltas)
        self._apply_aggregated(uniq, agg)

    def scatter_add_rows_reference(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """The seed's naive formulation (``np.unique`` + ``np.add.at``)."""
        indices = np.asarray(indices, dtype=np.int64)
        uniq, inverse = np.unique(indices, return_inverse=True)
        agg = np.zeros((uniq.shape[0], self.dim), dtype=np.float32)
        np.add.at(agg, inverse, deltas)
        self._apply_aggregated(uniq, agg)

    def apply_bag_updates(
        self, bag_grads: np.ndarray, bag_ids: np.ndarray, indices: np.ndarray
    ) -> None:
        uniq, agg = aggregate_bag_duplicates(
            np.asarray(indices, dtype=np.int64), bag_grads, bag_ids
        )
        self._apply_aggregated(uniq, agg)

    def _apply_aggregated(self, uniq: np.ndarray, agg: np.ndarray) -> None:
        from repro.kernels.segment import resolve_pool, shardable

        pool = resolve_pool(None)
        if shardable(pool, uniq.shape[0], agg.size):
            # Rows in ``uniq`` are distinct, so pool workers owning
            # disjoint [lo, hi) slices touch disjoint table rows; the
            # per-row combine/add/split is element-wise, so the parallel
            # update is bitwise the sequential one.
            pool.run_sharded(
                lambda lo, hi, tid: self._apply_aggregated_range(
                    uniq[lo:hi], agg[lo:hi]
                ),
                uniq.shape[0],
            )
            return
        self._apply_aggregated_range(uniq, agg)

    def _apply_aggregated_range(self, uniq: np.ndarray, agg: np.ndarray) -> None:
        rows = combine_fp32(self.hi[uniq], self.lo[uniq])
        rows = rows + agg
        hi, lo = split_fp32(rows)
        self.hi[uniq] = hi
        self.lo[uniq] = truncate_lo_bits(lo, self.lo_bits)

    def capacity_bytes(self) -> int:
        # 2 bytes model (hi) + 2 bytes optimizer state (lo): same total as
        # FP32, with zero master-weight overhead.
        return self.rows * self.dim * (2 + 2)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Both 16-bit halves -- together the exact FP32 master weight."""
        return {"hi": self.hi.copy(), "lo": self.lo.copy()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._load_array(state, "hi", self.hi, np.uint16)
        self._load_array(state, "lo", self.lo, np.uint16)
