"""Small shared utilities: stable seeded RNG streams, deterministic retry.

NumPy's ``SeedSequence`` accepts only integers, so hierarchical stream
labels ("table 3 of seed 7") are hashed to stable 64-bit integers first.
Stability matters: the distributed == single-process equivalence tests
rely on every process deriving bit-identical table weights from the same
(seed, label) keys, regardless of which rank instantiates them.

:func:`retry` is the one retry loop shared by everything that touches a
racy resource (shared-memory segment creation in :mod:`repro.exec.mp`,
checkpoint writes in :mod:`repro.train.checkpoint`): capped exponential
backoff whose jitter comes from the same seeded-stream machinery, so a
retried run sleeps the exact same schedule every time.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, TypeVar

import numpy as np

T = TypeVar("T")


def seed_key(*parts: object) -> list[int]:
    """Map arbitrary hashable parts to a stable entropy list."""
    out: list[int] = []
    for p in parts:
        if isinstance(p, (int, np.integer)):
            out.append(int(p) & 0xFFFFFFFFFFFFFFFF)
        else:
            digest = hashlib.sha256(repr(p).encode()).digest()
            out.append(int.from_bytes(digest[:8], "little"))
    return out


def rng_from(*parts: object) -> np.random.Generator:
    """A deterministic Generator for the stream labelled by ``parts``."""
    return np.random.default_rng(seed_key(*parts))


def backoff_delays(
    attempts: int,
    backoff: float,
    cap: float = 30.0,
    jitter_seed: object = 0,
) -> list[float]:
    """The sleep schedule :func:`retry` uses, as data.

    ``attempts - 1`` delays (no sleep after the final attempt): capped
    exponential ``backoff * 2**k``, each scaled by a jitter factor in
    ``[1.0, 1.5)`` drawn from the ``("retry", jitter_seed)`` stream --
    deterministic for a given seed, decorrelated across seeds (give each
    contending caller its own seed, e.g. a worker index).
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if backoff < 0:
        raise ValueError("backoff must be non-negative")
    rng = rng_from("retry", jitter_seed)
    return [
        min(cap, backoff * (2.0**k)) * (1.0 + 0.5 * rng.random())
        for k in range(attempts - 1)
    ]


def retry(
    fn: Callable[[], T],
    attempts: int = 3,
    backoff: float = 0.05,
    cap: float = 30.0,
    jitter_seed: object = 0,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``attempts`` times with seeded-jitter backoff.

    Retries only on ``retry_on`` exceptions (transient-by-convention:
    ``OSError`` covers the shm ``EEXIST``/``ENOSPC`` races and torn
    filesystem writes); anything else propagates immediately, and the
    final attempt's exception propagates unwrapped.  The jitter schedule
    is :func:`backoff_delays` -- a pure function of
    ``(attempts, backoff, cap, jitter_seed)`` -- so failure handling
    never introduces nondeterminism into an otherwise bit-exact run.
    """
    delays = backoff_delays(attempts, backoff, cap=cap, jitter_seed=jitter_seed)
    for k in range(attempts):
        try:
            return fn()
        except retry_on:
            if k == attempts - 1:
                raise
            if delays[k] > 0:
                sleep(delays[k])
    raise AssertionError("unreachable")  # pragma: no cover
