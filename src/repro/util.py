"""Small shared utilities: stable seeded RNG streams.

NumPy's ``SeedSequence`` accepts only integers, so hierarchical stream
labels ("table 3 of seed 7") are hashed to stable 64-bit integers first.
Stability matters: the distributed == single-process equivalence tests
rely on every process deriving bit-identical table weights from the same
(seed, label) keys, regardless of which rank instantiates them.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_key(*parts: object) -> list[int]:
    """Map arbitrary hashable parts to a stable entropy list."""
    out: list[int] = []
    for p in parts:
        if isinstance(p, (int, np.integer)):
            out.append(int(p) & 0xFFFFFFFFFFFFFFFF)
        else:
            digest = hashlib.sha256(repr(p).encode()).digest()
            out.append(int.from_bytes(digest[:8], "little"))
    return out


def rng_from(*parts: object) -> np.random.Generator:
    """A deterministic Generator for the stream labelled by ``parts``."""
    return np.random.default_rng(seed_key(*parts))
