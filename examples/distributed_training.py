"""Hybrid-parallel DLRM on a simulated 8-socket node (paper Sect. IV).

Trains the same global minibatches on (a) a single process and (b) a
4-rank hybrid-parallel cluster -- model-parallel embeddings, data-parallel
MLPs, alltoall at the interaction -- and verifies that the two runs agree,
then prints the per-rank time profile the virtual cluster collected.

Usage:  python examples/distributed_training.py
"""

import numpy as np

from repro.core.config import SMALL
from repro.core.model import DLRM
from repro.core.optim import SGD
from repro.data.synthetic import RandomRecDataset
from repro.parallel.cluster import SimCluster
from repro.parallel.hybrid import DistributedDLRM
from repro.perf.report import format_seconds

RANKS = 4
STEPS = 5


def main() -> None:
    cfg = SMALL.scaled_down(rows_cap=2000, minibatch=64)
    data = RandomRecDataset(cfg, seed=3)
    batches = [data.batch(cfg.minibatch, i) for i in range(STEPS)]

    # Single-process reference.
    ref = DLRM(cfg, seed=11)
    ref_opt = SGD(lr=0.05)
    ref_losses = [ref.train_step(b, ref_opt, normalizer=b.size) for b in batches]

    # Hybrid-parallel run on the simulated 8-socket SKX node.
    cluster = SimCluster(RANKS, platform="node", backend="ccl")
    dist = DistributedDLRM(cfg, cluster, seed=11, exchange="alltoall")
    dist.attach_optimizers(lambda: SGD(lr=0.05))
    dist_losses = [dist.train_step(b) for b in batches]

    print(f"{RANKS}-rank hybrid parallel vs single process "
          f"({cfg.num_tables} tables round-robin over ranks):")
    for i, (a, b) in enumerate(zip(ref_losses, dist_losses)):
        print(f"  step {i}: single = {a:.6f}   distributed = {b:.6f}   "
              f"|diff| = {abs(a - b):.2e}")
    assert np.allclose(ref_losses, dist_losses, rtol=1e-5)
    print("  -> losses agree (the Sect. IV parallelisation is exact)\n")

    print("per-rank virtual-time profile (rank 0):")
    prof = cluster.profilers[0]
    for cat in prof.categories():
        print(f"  {cat:32s} {format_seconds(prof.get(cat))}")
    print(f"\nvirtual wall-clock on rank 0: {format_seconds(cluster.clocks[0].now)}")
    print(f"compute bucket: {format_seconds(prof.compute_time())}   "
          f"exposed communication: {format_seconds(prof.comm_time())}")


if __name__ == "__main__":
    main()
