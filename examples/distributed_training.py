"""Hybrid-parallel DLRM on a simulated 8-socket node (paper Sect. IV).

One RunSpec, two parallelism sections: ``make_trainer`` builds a
single-process :class:`~repro.train.Trainer` for ``ranks=1`` and a
:class:`~repro.train.DistributedTrainer` (model-parallel embeddings,
data-parallel MLPs, alltoall at the interaction) for ``ranks=4``.  Both
train the same global minibatches; the losses agree, and the virtual
cluster's per-rank time profile shows where the iteration went.

Usage:  python examples/distributed_training.py
"""

import numpy as np

from repro.perf.report import format_seconds
from repro.train import RunSpec, make_trainer

RANKS = 4


def main(steps: int = 5, minibatch: int = 64) -> None:
    base = {
        "name": "hybrid-vs-single",
        "model": {"config": "small", "rows_cap": 2000, "minibatch": minibatch,
                  "seed": 11},
        "data": {"name": "random", "seed": 3},
        "optimizer": {"name": "sgd", "lr": 0.05},
        "schedule": {"steps": steps, "batch_size": minibatch,
                     "eval_size": minibatch * RANKS},
    }

    # Single-process reference: normalise by the batch so the losses are
    # directly comparable to the distributed run's global-minibatch loss.
    single = make_trainer(RunSpec.from_dict(base))
    single.loss_normalizer = minibatch
    single.fit()

    # Hybrid-parallel run on the simulated 8-socket SKX node.
    dist = make_trainer(
        RunSpec.from_dict({**base, "parallel": {"ranks": RANKS, "platform": "node"}})
    )
    dist.fit()

    print(f"{RANKS}-rank hybrid parallel vs single process "
          f"({single.model.cfg.num_tables} tables round-robin over ranks):")
    for i, (a, b) in enumerate(zip(single.losses, dist.losses)):
        print(f"  step {i}: single = {a:.6f}   distributed = {b:.6f}   "
              f"|diff| = {abs(a - b):.2e}")
    assert np.allclose(single.losses, dist.losses, rtol=1e-5)
    print("  -> losses agree (the Sect. IV parallelisation is exact)\n")

    cluster = dist.dist.cluster
    print("per-rank virtual-time profile (rank 0):")
    prof = cluster.profilers[0]
    for cat in prof.categories():
        print(f"  {cat:32s} {format_seconds(prof.get(cat))}")
    print(f"\nvirtual wall-clock on rank 0: {format_seconds(cluster.clocks[0].now)}")
    print(f"compute bucket: {format_seconds(prof.compute_time())}   "
          f"exposed communication: {format_seconds(prof.comm_time())}")


if __name__ == "__main__":
    main()
