"""Strong/weak scaling study across exchange strategies and backends.

Sweeps the analytic iteration model over rank counts for all three paper
configurations, printing Fig. 9/12-style speed-up tables plus the
compute/communication split that explains them (Figs. 10-14).

Usage:  python examples/scaling_study.py [config]   (default: large)
"""

import sys

from repro.bench.scaling import (
    BASELINE_RANKS,
    STRONG_RANKS,
    run_fig9_strong_scaling,
    run_fig12_weak_scaling,
)
from repro.core.config import get_config
from repro.parallel.timing import model_iteration
from repro.perf.report import print_table


def comm_split_table(config: str) -> None:
    rows = []
    for r in STRONG_RANKS[config]:
        if r < BASELINE_RANKS[config]:
            continue
        res = model_iteration(config, r, backend="ccl", blocking=True)
        bd = res.comm_breakdown()
        rows.append(
            {
                "ranks": r,
                "compute_ms": res.compute_time * 1e3,
                "alltoall_ms": bd["Alltoall-Wait"] * 1e3,
                "allreduce_ms": bd["Allreduce-Wait"] * 1e3,
                "total_ms": res.iteration_time * 1e3,
            }
        )
    print_table(rows, title=f"\n{config}: blocking compute/comm split (CCL)")


def main(config: str | None = None) -> None:
    if config is None:
        config = sys.argv[1] if len(sys.argv) > 1 else "large"
    get_config(config)  # validate the name early

    strong = [r for r in run_fig9_strong_scaling((config,))]
    print_table(
        strong,
        columns=["variant", "ranks", "ms_per_iter", "speedup", "efficiency"],
        title=f"{config}: strong scaling (GN={get_config(config).global_minibatch})",
    )
    weak = [r for r in run_fig12_weak_scaling((config,))]
    print_table(
        weak,
        columns=["variant", "ranks", "ms_per_iter", "speedup", "efficiency"],
        title=f"\n{config}: weak scaling (LN={get_config(config).local_minibatch})",
    )
    comm_split_table(config)
    print(
        "\nReading guide: CCL-Alltoall wins everywhere; the scatter-based\n"
        "exchanges serialise at the table owners' ports; strong-scaling\n"
        "efficiency decays as the fixed-volume allreduce (Eq. 1) meets\n"
        "shrinking compute, while the alltoall (Eq. 2) gets cheaper."
    )


if __name__ == "__main__":
    main()
