"""Embedding-update contention: uniform vs Criteo-like indices (Fig. 7/8).

Shows, with real index streams, why the paper's four update strategies
tie on the small config's uniform look-ups but separate by an order of
magnitude on the terabyte dataset's skewed look-ups -- and verifies that
all of them produce bit-identical weights regardless.

Usage:  python examples/embedding_contention.py
"""

import numpy as np

from repro.core.embedding import EmbeddingBag, SparseGrad
from repro.core.update import make_strategy
from repro.data.synthetic import bounded_zipf
from repro.hw.cache import index_stats
from repro.hw.costmodel import CostModel
from repro.hw.spec import SKX_8180
from repro.perf.report import format_seconds, print_table

ROWS, DIM, LOOKUPS, THREADS = 200_000, 128, 16_384, 28
STRATEGIES = ("reference", "atomic", "rtm", "racefree", "fused")


def stream(kind: str, rows: int, lookups: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    if kind == "uniform":
        return rng.integers(0, rows, size=lookups, dtype=np.int64)
    return bounded_zipf(rng, lookups, rows)


def main(rows_n: int = ROWS, dim: int = DIM, lookups: int = LOOKUPS) -> None:
    cm = CostModel(SKX_8180)
    rng = np.random.default_rng(1)
    grad_values = rng.standard_normal((lookups, dim)).astype(np.float32)

    rows = []
    for kind in ("uniform", "zipf"):
        idx = stream(kind, rows_n, lookups)
        stats = index_stats(idx, rows_n, threads=THREADS)
        grad = SparseGrad(idx, grad_values)

        # All strategies apply identical arithmetic -- verify it.
        results = {}
        for name in STRATEGIES:
            table = EmbeddingBag(rows_n, dim, rng=np.random.default_rng(7))
            make_strategy(name, threads=THREADS).apply(table, grad, lr=0.01)
            results[name] = table.weight
        for name in STRATEGIES[1:]:
            np.testing.assert_allclose(
                results[name], results["reference"], rtol=1e-6, atol=1e-7
            )

        for name in STRATEGIES:
            t = cm.embedding_update_time(name, stats, row_bytes=dim * 4)
            rows.append(
                {
                    "indices": kind,
                    "strategy": name,
                    "modelled_time": format_seconds(t),
                    "conflicts": round(stats.conflicts),
                    "imbalance": round(stats.imbalance, 2),
                }
            )
    print_table(rows, title="Sparse-update strategies under two index regimes")
    print(
        "\nUniform draws: duplicates exist but are never concurrent -> the\n"
        "optimised strategies tie.  Zipf draws: the hot head serialises on\n"
        "cache-line transfers, so atomic/RTM fall behind while the race-free\n"
        "row partition stays flat -- the paper's Fig. 7/8 story.  The weight\n"
        "arrays above were verified bit-compatible across all strategies."
    )


if __name__ == "__main__":
    main()
