"""Quickstart: build a DLRM, train it, and inspect the cost model.

Runs a scaled-down version of the paper's *small* configuration (Table I)
end to end on the random dataset, then asks the analytic cost model what
the same iteration would cost at full scale on the paper's Skylake
socket -- reproducing the Fig. 7 headline (reference vs. optimised).

Usage:  python examples/quickstart.py
"""

from repro.core.config import SMALL
from repro.core.model import DLRM
from repro.core.optim import SGD
from repro.core.update import make_strategy
from repro.data.synthetic import RandomRecDataset
from repro.parallel.timing import single_socket_iteration
from repro.perf.report import format_seconds


def main() -> None:
    # --- functional training at laptop scale -----------------------------
    cfg = SMALL.scaled_down(rows_cap=5000, minibatch=128)
    print(f"config: {cfg.name}  (S={cfg.num_tables} tables, E={cfg.embedding_dim}, "
          f"N={cfg.minibatch})")
    model = DLRM(cfg, seed=0)
    opt = SGD(lr=0.05, strategy=make_strategy("racefree"))
    data = RandomRecDataset(cfg, seed=1)

    print("\ntraining 20 iterations on the random dataset:")
    for step, batch in enumerate(data.batches(cfg.minibatch, count=20)):
        loss = model.train_step(batch, opt)
        if step % 5 == 0 or step == 19:
            print(f"  step {step:3d}  loss = {loss:.4f}")

    probs = model.predict_proba(data.batch(cfg.minibatch, 999))
    print(f"\npredictions on a held-out batch: mean CTR = {probs.mean():.3f}")

    # --- the paper-scale cost model ----------------------------------------
    print("\nmodelled single-socket iteration at paper scale (Fig. 7):")
    ref = single_socket_iteration("small", update="reference", gemm_impl="pytorch_mkl")
    opt_t = single_socket_iteration("small", update="racefree")
    print(f"  PyTorch v1.4 reference : {format_seconds(ref.iteration_time)}")
    print(f"  this work (race-free)  : {format_seconds(opt_t.iteration_time)}")
    print(f"  speed-up               : {ref.iteration_time / opt_t.iteration_time:.0f}x "
          f"(paper: 110x)")


if __name__ == "__main__":
    main()
