"""Quickstart: declare a RunSpec, train it, and inspect the cost model.

The experiment is *data*: a :class:`repro.train.RunSpec` describing a
scaled-down version of the paper's *small* configuration (Table I),
turned into a live :class:`repro.train.Trainer` by ``make_trainer``.
The trainer owns the loop; a ``MetricLogger`` callback prints losses.
Afterwards the analytic cost model prices the same iteration at full
scale on the paper's Skylake socket -- reproducing the Fig. 7 headline
(reference vs. optimised).

Usage:  python examples/quickstart.py
"""

from repro.parallel.timing import single_socket_iteration
from repro.perf.report import format_seconds
from repro.train import MetricLogger, RunSpec, make_trainer


def main(steps: int = 20, rows_cap: int = 5000, minibatch: int = 128) -> None:
    # --- functional training at laptop scale -----------------------------
    spec = RunSpec.from_dict(
        {
            "name": "quickstart",
            "model": {"config": "small", "rows_cap": rows_cap, "minibatch": minibatch},
            "data": {"name": "random", "seed": 1},
            "optimizer": {"name": "sgd", "lr": 0.05},
            "update": {"name": "racefree"},
            "schedule": {"steps": steps, "eval_size": minibatch},
        }
    )
    cfg = spec.build_config()
    print(f"config: {cfg.name}  (S={cfg.num_tables} tables, E={cfg.embedding_dim}, "
          f"N={cfg.minibatch})")

    logger = MetricLogger(print_every=5)
    trainer = make_trainer(spec, callbacks=[logger])
    print(f"\ntraining {steps} iterations on the random dataset:")
    trainer.fit()
    last_step, last_loss = logger.history[-1]
    print(f"  step {last_step:3d}  loss = {last_loss:.4f}")

    probs = trainer.predict_proba(trainer.dataset.batch(cfg.minibatch, 999))
    print(f"\npredictions on a held-out batch: mean CTR = {probs.mean():.3f}")

    # --- the paper-scale cost model ----------------------------------------
    print("\nmodelled single-socket iteration at paper scale (Fig. 7):")
    ref = single_socket_iteration("small", update="reference", gemm_impl="pytorch_mkl")
    opt_t = single_socket_iteration("small", update="racefree")
    print(f"  PyTorch v1.4 reference : {format_seconds(ref.iteration_time)}")
    print(f"  this work (race-free)  : {format_seconds(opt_t.iteration_time)}")
    print(f"  speed-up               : {ref.iteration_time / opt_t.iteration_time:.0f}x "
          f"(paper: 110x)")


if __name__ == "__main__":
    main()
