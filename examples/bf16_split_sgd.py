"""Split-SGD-BF16 (paper Sect. VII) on synthetic Criteo click data.

Trains an MLPerf-shaped DLRM three ways -- FP32 SGD, Split-SGD-BF16, and
the classic master-weight mixed precision -- and reports ROC AUC plus the
storage each scheme needs.  Each variant is three lines of RunSpec diff;
the Trainer runs the identical loop for all of them.  The punchline
matches Fig. 16: the split optimizer tracks FP32 with *zero*
master-weight capacity overhead.

Usage:  python examples/bf16_split_sgd.py
"""

from repro.train import RunSpec, make_trainer

LR = 0.15

VARIANTS: dict[str, tuple[dict, str]] = {
    "fp32": (
        {"optimizer": {"name": "sgd", "lr": LR}},
        "none (FP32 weights)",
    ),
    "split_bf16": (
        {
            "optimizer": {"name": "split_sgd", "lr": LR},
            "precision": {"storage": "split_bf16", "lo_bits": 16},
        },
        "0 bytes (lo halves replace the FP32 LSBs)",
    ),
    "master_bf16": (
        {"optimizer": {"name": "master_weight", "lr": LR}},
        "4 B/elem FP32 master copy (the classic 3x overhead)",
    ),
}

#: The scaled MLPerf shape of ``bench.convergence.scaled_mlperf``.
_MODEL = {
    "config": "mlperf",
    "rows_cap": 2000,
    "seed": 5,
    "overrides": {
        "name": "mlperf-fig16",
        "minibatch": 128,
        "global_minibatch": 512,
        "local_minibatch": 128,
        "embedding_dim": 16,
        "bottom_mlp": [64, 32, 16],
        "top_mlp": [64, 32, 1],
    },
}


def main(steps: int = 40, test_size: int = 4096) -> None:
    base = {
        "model": _MODEL,
        "data": {"name": "criteo", "seed": 0},
        "schedule": {"steps": steps, "eval_size": test_size},
    }
    cfg = RunSpec.from_dict(base).build_config()
    print(f"MLPerf-shaped DLRM ({cfg.num_tables} tables, E={cfg.embedding_dim}) "
          f"on synthetic Criteo, {steps} iterations\n")
    for variant, (diff, extra) in VARIANTS.items():
        spec = RunSpec.from_dict({**base, "name": variant, **diff})
        trainer = make_trainer(spec).fit()
        auc = trainer.evaluate()["auc"]
        print(f"  {variant:12s} AUC = {auc:.4f}   master-weight overhead: {extra}")
    print("\nSplit-SGD stores FP32 weights as (BF16 hi || 16-bit lo): the model")
    print("half is a valid BF16 tensor, the update is FP32-exact, and no")
    print("separate master copy exists -- Sect. VII's contribution.")


if __name__ == "__main__":
    main()
