"""Split-SGD-BF16 (paper Sect. VII) on synthetic Criteo click data.

Trains an MLPerf-shaped DLRM three ways -- FP32 SGD, Split-SGD-BF16, and
the classic master-weight mixed precision -- and reports ROC AUC plus the
storage each scheme needs.  The punchline matches Fig. 16: the split
optimizer tracks FP32 with *zero* master-weight capacity overhead.

Usage:  python examples/bf16_split_sgd.py
"""

from repro.bench.convergence import scaled_mlperf
from repro.core.metrics import roc_auc
from repro.core.model import DLRM
from repro.core.optim import SGD, MasterWeightSGD, SplitSGD
from repro.data.criteo import SyntheticCriteoDataset

STEPS = 40
LR = 0.15


def train(variant: str, cfg, data, test_batch) -> tuple[float, str]:
    if variant == "fp32":
        model, opt = DLRM(cfg, seed=5), SGD(lr=LR)
        extra = "none (FP32 weights)"
    elif variant == "split_bf16":
        model = DLRM(cfg, seed=5, storage="split_bf16")
        opt = SplitSGD(lr=LR)
        extra = "0 bytes (lo halves replace the FP32 LSBs)"
    elif variant == "master_bf16":
        model, opt = DLRM(cfg, seed=5), MasterWeightSGD(lr=LR)
        extra = "4 B/elem FP32 master copy (the classic 3x overhead)"
    else:
        raise ValueError(variant)
    opt.register(model.parameters())
    for i in range(STEPS):
        model.train_step(data.batch(cfg.minibatch, i), opt)
    auc = roc_auc(test_batch.labels, model.predict_proba(test_batch))
    return auc, extra


def main() -> None:
    cfg = scaled_mlperf()
    data = SyntheticCriteoDataset(cfg, seed=0)
    test_batch = data.batch(4096, batch_index=10_000_000)
    print(f"MLPerf-shaped DLRM ({cfg.num_tables} tables, E={cfg.embedding_dim}) "
          f"on synthetic Criteo, {STEPS} iterations\n")
    for variant in ("fp32", "split_bf16", "master_bf16"):
        auc, extra = train(variant, cfg, data, test_batch)
        print(f"  {variant:12s} AUC = {auc:.4f}   master-weight overhead: {extra}")
    print("\nSplit-SGD stores FP32 weights as (BF16 hi || 16-bit lo): the model")
    print("half is a valid BF16 tensor, the update is FP32-exact, and no")
    print("separate master copy exists -- Sect. VII's contribution.")


if __name__ == "__main__":
    main()
