"""Train -> checkpoint -> resume -> serve: the full experiment loop.

The walkthrough from the README's "Training API" section as code:

1. declare an experiment as a RunSpec (pure data, JSON-round-trippable),
2. train it with callbacks (periodic eval + LR warmup/decay),
3. checkpoint to ``.npz`` and *resume bit-identically*,
4. hand the checkpoint to :class:`repro.serve.InferenceEngine` -- the
   serving engine scores with exactly the trained weights.

Usage:  python examples/train_serve.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.serve import InferenceEngine
from repro.train import RunSpec, Trainer, make_trainer


def main(steps: int = 12) -> None:
    spec = RunSpec.from_dict(
        {
            "name": "train-serve-demo",
            "model": {"config": "mlperf", "rows_cap": 2000, "minibatch": 128,
                      "seed": 7},
            "data": {"name": "criteo", "seed": 0},
            "optimizer": {"name": "sgd", "lr": 0.1},
            "schedule": {
                "steps": steps,
                "eval_every": max(1, steps // 2),
                "eval_size": 512,
                "lr_schedule": {"name": "warmup_decay", "peak_lr": 0.1,
                                "warmup_steps": max(1, steps // 4)},
            },
        }
    )
    print("RunSpec JSON (what `repro train --spec` consumes):")
    print("\n".join(spec.to_json().splitlines()[:8] + ["  ..."]))

    with tempfile.TemporaryDirectory() as tmp:
        ckpt_mid = Path(tmp) / "mid.npz"
        ckpt_final = Path(tmp) / "final.npz"

        # Train halfway, checkpoint, resume: identical to training straight.
        half = steps // 2
        trainer = make_trainer(spec)
        trainer.fit(half)
        trainer.save_checkpoint(ckpt_mid)
        resumed = Trainer.from_checkpoint(ckpt_mid).fit(steps - half)
        straight = make_trainer(spec).fit(steps)
        a, b = straight.model.state_dict(), resumed.model.state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)
        print(f"\nresume check: {half}+{steps - half} steps == {steps} steps, "
              "bit-identical weights")
        print(f"eval after {steps} steps: "
              + "  ".join(f"{k}={v:.4f}" for k, v in resumed.evaluate().items()))

        # Serve the trained model straight from the file.
        resumed.save_checkpoint(ckpt_final)
        engine = InferenceEngine.from_checkpoint(ckpt_final)
        batch = resumed.dataset.batch(256, 10_000_001)
        served = engine.predict(batch)
        in_memory = resumed.predict_proba(batch)
        assert np.array_equal(served, in_memory)
        print(f"serving check: engine.predict == in-memory model on "
              f"{batch.size} held-out samples (bit-equal), "
              f"mean CTR = {served.mean():.3f}")


if __name__ == "__main__":
    main()
