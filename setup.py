"""Package metadata for the DLRM CPU-cluster reproduction.

Kept as a classic ``setup.py`` (no ``pyproject.toml``): the build
environment carries no ``wheel`` package, so PEP 517 editable installs
are unavailable and ``pip install -e . --no-build-isolation`` must go
through the legacy setuptools path.
"""

import pathlib

from setuptools import find_packages, setup

_HERE = pathlib.Path(__file__).parent

setup(
    name="repro-dlrm-cpu",
    version="0.1.0",
    description=(
        "Reproduction of 'Optimizing deep learning recommender systems "
        "training on CPU cluster architectures' (SC'20): analytic cost "
        "models, a simulated SPMD cluster, functional DLRM training and "
        "a batched, cache-aware serving subsystem"
    ),
    long_description=(_HERE / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        "lint": ["ruff"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
