"""Legacy installer shim (the build environment has no `wheel` package,
so PEP 517 editable installs are unavailable)."""

from setuptools import setup

setup()
