#!/usr/bin/env python
"""Generate docs/CLI.md from the live argparse tree (single source of truth).

The reference page is *derived*, never hand-edited: this script walks
``repro.cli._build_parser()`` and renders every subcommand's arguments,
defaults, choices and epilog to markdown.  CI runs ``gen_cli.py --check``
and fails when the committed page differs from the regenerated one, so
the docs cannot drift from the code.

Usage::

    PYTHONPATH=src python docs/gen_cli.py            # rewrite docs/CLI.md
    PYTHONPATH=src python docs/gen_cli.py --check    # exit 1 on drift
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_OUT = HERE / "CLI.md"

HEADER = """\
# CLI reference

<!-- GENERATED FILE - do not edit.  Regenerate with:
     PYTHONPATH=src python docs/gen_cli.py -->

Every experiment, training run and tool is reachable through one
entrypoint (installed as ``repro``, or ``python -m repro.cli``).
This page is generated from the argparse tree; CI fails if it drifts.
"""


def _clean(text: str | None) -> str:
    return " ".join((text or "").split())


def _flag_of(action: argparse.Action) -> str:
    if action.option_strings:
        flag = max(action.option_strings, key=len)
    else:
        flag = action.dest
    if action.nargs == 0:
        return f"`{flag}`"
    metavar = action.metavar or action.dest.upper()
    return f"`{flag} {metavar}`"


def _default_of(action: argparse.Action) -> str:
    if action.nargs == 0 or action.default in (None, argparse.SUPPRESS):
        return ""
    if isinstance(action.default, (list, tuple)):
        return " ".join(str(v) for v in action.default)
    return str(action.default)


def render(parser: argparse.ArgumentParser) -> str:
    sub_action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    lines = [HEADER]
    lines.append("## Subcommands\n")
    lines.append("| command | description |")
    lines.append("| --- | --- |")
    helps = {
        choice.dest: _clean(choice.help)
        for choice in sub_action._choices_actions
    }
    for name in sub_action.choices:
        lines.append(f"| [`repro {name}`](#repro-{name}) | {helps.get(name, '')} |")
    lines.append("")
    for name, sp in sub_action.choices.items():
        lines.append(f"## `repro {name}`\n")
        if helps.get(name):
            lines.append(helps[name] + "\n")
        rows = []
        for action in sp._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            help_text = _clean(action.help)
            if action.choices:
                help_text += f" (choices: {', '.join(map(str, action.choices))})"
            rows.append((_flag_of(action), _default_of(action), help_text))
        if rows:
            lines.append("| argument | default | description |")
            lines.append("| --- | --- | --- |")
            for flag, default, help_text in rows:
                lines.append(f"| {flag} | {default} | {help_text} |")
            lines.append("")
        if sp.epilog:
            lines.append("```text")
            lines.append(sp.epilog.rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", action="store_true", help="fail on drift, write nothing")
    ap.add_argument("--out", default=str(DEFAULT_OUT))
    args = ap.parse_args(argv)

    from repro.cli import _build_parser

    rendered = render(_build_parser())
    out = Path(args.out)
    if args.check:
        current = out.read_text() if out.is_file() else ""
        if current != rendered:
            sys.stderr.write(
                f"{out} is stale; regenerate with: "
                "PYTHONPATH=src python docs/gen_cli.py\n"
            )
            return 1
        print(f"{out} is up to date")
        return 0
    out.write_text(rendered)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
