#!/usr/bin/env python
"""Dead-link checker for the markdown docs (README.md + docs/ + *.md).

Verifies every *local* markdown link target -- ``[text](path)`` and
``[text](path#anchor)`` -- resolves to an existing file or directory
relative to the linking file, and that anchors into markdown files match
a heading.  External links (http/https/mailto) are not fetched: CI must
stay hermetic.  Exit 1 lists every broken link.

Usage::

    python docs/check_links.py            # repo root inferred
    python docs/check_links.py --root .   # explicit
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: [text](target) -- excluding images' leading '!' is unnecessary: image
#: targets must resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _anchor_of(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    # Strip inline-formatting characters.  Underscores stay: GitHub keeps
    # them in slugs (they are word characters, not punctuation).
    slug = re.sub(r"[`*~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(md: Path) -> set[str]:
    text = _CODE_FENCE.sub("", md.read_text())
    return {_anchor_of(m.group(1)) for m in _HEADING.finditer(text)}


def check_file(md: Path, root: Path) -> list[str]:
    errors: list[str] = []
    text = _CODE_FENCE.sub("", md.read_text())
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if _anchor_of(target[1:]) not in _anchors(md):
                errors.append(f"{md.relative_to(root)}: broken anchor {target}")
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (md.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(root)}: missing target {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if _anchor_of(anchor) not in _anchors(resolved):
                errors.append(
                    f"{md.relative_to(root)}: missing anchor #{anchor} in {path_part}"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root", default=str(Path(__file__).resolve().parent.parent)
    )
    args = ap.parse_args(argv)
    root = Path(args.root).resolve()
    files = sorted(
        p
        for p in list(root.glob("*.md")) + list((root / "docs").glob("*.md"))
        if p.is_file()
    )
    errors: list[str] = []
    for md in files:
        errors.extend(check_file(md, root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
